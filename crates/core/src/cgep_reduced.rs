//! Reduced-space **C-GEP** — copy-on-destroy snapshots.
//!
//! The paper observes (Section 2.2.2, "Reducing the Additional Space")
//! that at any point during C-GEP's execution at most `n² + n` of the
//! `4n²` snapshot values are needed, and sketches a variant using four
//! `(n/2) × (n/2)` matrices plus two `n/2`-vectors. The exact construction
//! lives in the companion technical report (TR-06-04); this module
//! implements the underlying liveness argument directly:
//!
//! * as long as a cell has not advanced past the state a snapshot slot
//!   captures, readers of that slot can read the **cell itself** — no copy
//!   is needed;
//! * a snapshot is materialised only at the *destroying write*: when an
//!   update is about to overwrite a state that some future reader still
//!   needs (τ of the slot equals the cell's pre-update state), the old
//!   value is copied out, tagged with its exact remaining-reader count
//!   (derivable from `Σ`);
//! * every read decrements the count; the slot is freed at zero.
//!
//! A snapshot is therefore live for the minimal possible window —
//! destruction to last read — and the measured peak obeys the paper's
//! `n² + n` bound (asserted by the property tests, fuzzing over arbitrary
//! `f` and `Σ`, and recorded in `EXPERIMENTS.md`). Like the paper's
//! reduced variant, this one trades bookkeeping time for the smaller
//! footprint, which is why Figure 9 shows it slower than the `4n²`
//! variant.

use crate::spec::GepSpec;
use crate::store::CellStore;
use gep_matrix::Matrix;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the already-well-mixed `u64` slot keys —
/// the snapshot maps are on the per-update hot path, where SipHash would
/// dominate the runtime (the paper's variant pays analogous bookkeeping in
/// buffer re-initialisation instead).
#[derive(Default)]
struct SlotHasher(u64);

impl Hasher for SlotHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fibonacci hashing: one multiply, strong high bits.
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SlotMap<V> = HashMap<u64, V, BuildHasherDefault<SlotHasher>>;

/// Statistics from a reduced-space C-GEP run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReducedSpaceStats {
    /// Maximum number of snapshot *values* live at any instant.
    pub peak_live_snapshots: usize,
    /// Total snapshot materialisations (copy-on-destroy events).
    pub saves: u64,
    /// Total snapshot-slot reads (from a copy or from the live cell).
    pub reads: u64,
    /// Reads served directly from the live cell (no copy existed).
    pub reads_from_cell: u64,
    /// The paper's claimed bound for comparison: `n² + n`.
    pub claimed_bound: usize,
}

/// Slot kinds, in the paper's naming. A slot `(kind, a, b)` captures the
/// state of cell `(a, b)` after all its updates with
/// `k' ≤ limit(kind, a, b)` where the limits are `b−1, b, a−1, a`.
const U0: u64 = 0;
const U1: u64 = 1;
const V0: u64 = 2;
const V1: u64 = 3;

#[inline(always)]
fn key(kind: u64, a: usize, b: usize) -> u64 {
    (kind << 60) | ((a as u64) << 30) | b as u64
}

#[inline(always)]
fn slot_limit(kind: u64, a: usize, b: usize) -> i64 {
    match kind {
        U0 => b as i64 - 1,
        U1 => b as i64,
        V0 => a as i64 - 1,
        _ => a as i64,
    }
}

/// Exact read-event counts for the four snapshot slots of cell `(a, b)`:
/// `[u0, u1, v0, v1]`.
///
/// * `u`-slots of `(a, b)` are read by updates `⟨a, j, b⟩` (their
///   `c[i,k]` argument), split by `j ≤ b` (u0) vs `j > b` (u1); when
///   `a == b` the diagonal cell additionally serves every `w`-read of
///   updates `⟨i, j, b⟩`, split by the Figure 3 Iverson bracket.
/// * `v`-slots of `(a, b)` are read by updates `⟨i, b, a⟩` (their
///   `c[k,j]` argument), split by `i ≤ a` (v0) vs `i > a` (v1).
fn slot_readers<S: GepSpec>(spec: &S, n: usize, a: usize, b: usize) -> [u32; 4] {
    let mut u0 = 0u32;
    let mut u1 = 0u32;
    for j in 0..n {
        if spec.in_sigma(a, j, b) {
            if j <= b {
                u0 += 1;
            } else {
                u1 += 1;
            }
        }
    }
    if a == b {
        // w-reads of the diagonal cell (b, b).
        for i in 0..n {
            for j in 0..n {
                if spec.in_sigma(i, j, b) {
                    if i > b || (i == b && j > b) {
                        u1 += 1;
                    } else {
                        u0 += 1;
                    }
                }
            }
        }
    }
    let mut v0 = 0u32;
    let mut v1 = 0u32;
    for i in 0..n {
        if spec.in_sigma(i, b, a) {
            if i <= a {
                v0 += 1;
            } else {
                v1 += 1;
            }
        }
    }
    [u0, u1, v0, v1]
}

/// Sentinel: reader count not computed yet.
const UNKNOWN: u32 = u32::MAX;

fn kind_name(kind: u64) -> &'static str {
    match kind {
        U0 => "u0",
        U1 => "u1",
        V0 => "v0",
        _ => "v1",
    }
}

/// Enumerates `Σ ∩ [0,n)³` for diagnostics (assertion messages only —
/// O(n³) membership scan, never on the success path).
fn dump_sigma<S: GepSpec>(spec: &S, n: usize) -> String {
    let sigma: Vec<(usize, usize, usize)> = (0..n)
        .flat_map(|k| (0..n).flat_map(move |i| (0..n).map(move |j| (i, j, k))))
        .filter(|&(i, j, k)| spec.in_sigma(i, j, k))
        .collect();
    format!("Σ ({} triples) = {:?}", sigma.len(), sigma)
}

struct SnapStore<'s, S: GepSpec> {
    spec: &'s S,
    n: usize,
    /// Remaining-reader counts per slot, dense and lazily initialised.
    /// This is *metadata* (4n² u32 counters), not snapshot storage; the
    /// paper's structural scheme encodes the same information in buffer
    /// placement. Index: `kind · n² + a · n + b`.
    counts: Vec<u32>,
    /// Materialised snapshot values — the paper's "intermediate values".
    /// At most ~n²+n entries are ever live (the §2.2.2 claim).
    live: SlotMap<S::Elem>,
    peak: usize,
    saves: u64,
    reads: u64,
    reads_from_cell: u64,
}

impl<S: GepSpec> SnapStore<'_, S> {
    #[inline(always)]
    fn idx(&self, kind: u64, a: usize, b: usize) -> usize {
        kind as usize * self.n * self.n + a * self.n + b
    }

    #[inline]
    fn remaining(&mut self, kind: u64, a: usize, b: usize) -> u32 {
        let i = self.idx(kind, a, b);
        let r = self.counts[i];
        if r != UNKNOWN {
            return r;
        }
        // First touch of any slot of (a, b): compute all four at once
        // (they share the Σ row/column scans).
        let rs = slot_readers(self.spec, self.n, a, b);
        for (k, &v) in rs.iter().enumerate() {
            let j = self.idx(k as u64, a, b);
            if self.counts[j] == UNKNOWN {
                self.counts[j] = v;
            }
        }
        self.counts[i]
    }

    /// Copy-on-destroy: called just before cell `(a, b)` (currently
    /// holding `old`, in the state after `tau_prev`) is overwritten.
    /// Materialises every slot whose captured state is the current one
    /// and that still has pending readers.
    fn on_destroy(&mut self, a: usize, b: usize, old: S::Elem, tau_prev: Option<usize>) {
        for kind in [U0, U1, V0, V1] {
            let limit = slot_limit(kind, a, b);
            if self.spec.tau(self.n, a, b, limit) != tau_prev {
                continue;
            }
            if self.remaining(kind, a, b) == 0 {
                continue;
            }
            self.live.insert(key(kind, a, b), old);
            self.saves += 1;
            self.peak = self.peak.max(self.live.len());
        }
    }

    /// Reads slot `(kind, a, b)`: from a materialised copy, or from the
    /// still-live cell when the state has not been destroyed yet.
    fn consume<St: CellStore<S::Elem> + ?Sized>(
        &mut self,
        c: &mut St,
        kind: u64,
        a: usize,
        b: usize,
    ) -> S::Elem {
        self.reads += 1;
        let k = key(kind, a, b);
        let remaining = self.remaining(kind, a, b);
        debug_assert!(
            remaining > 0,
            "read of slot {}[{a},{b}] with no pending readers — reader \
             accounting disagrees with the engine's actual reads; {}",
            kind_name(kind),
            dump_sigma(self.spec, self.n)
        );
        let val = match self.live.get(&k) {
            Some(&v) => v,
            None => {
                self.reads_from_cell += 1;
                c.read(a, b)
            }
        };
        let r = remaining - 1;
        let i = self.idx(kind, a, b);
        self.counts[i] = r;
        if r == 0 {
            self.live.remove(&k);
        }
        val
    }
}

/// Runs reduced-space C-GEP on `c`; equivalent to [`crate::cgep_full`]
/// (and hence to iterative GEP) for every spec, while keeping only the
/// minimal live snapshot set instead of four full matrices.
///
/// Returns space/bookkeeping statistics.
///
/// # Panics
/// Panics unless `c` is square with a power-of-two side.
pub fn cgep_reduced<S, St>(spec: &S, c: &mut St, base_size: usize) -> ReducedSpaceStats
where
    S: GepSpec,
    St: CellStore<S::Elem> + ?Sized,
{
    let n = c.n();
    if n == 0 {
        // Σ ⊆ [0,0)³ is empty: nothing to do, nothing ever live.
        return ReducedSpaceStats::default();
    }
    assert!(n.is_power_of_two(), "C-GEP needs a power-of-two side");
    assert!(base_size >= 1);
    let mut env = Env {
        base: base_size,
        snaps: SnapStore {
            spec,
            n,
            counts: vec![UNKNOWN; 4 * n * n],
            live: SlotMap::default(),
            peak: 0,
            saves: 0,
            reads: 0,
            reads_from_cell: 0,
        },
    };
    env.h_rec(c, 0, 0, 0, n);
    debug_assert!(
        env.snaps.live.is_empty(),
        "snapshots left live after the run ({:?}): reader accounting \
         incomplete; {}",
        env.snaps
            .live
            .keys()
            .map(|&k| {
                (
                    kind_name(k >> 60),
                    (k >> 30) as usize & 0x3FFF_FFFF,
                    k as usize & 0x3FFF_FFFF,
                )
            })
            .collect::<Vec<_>>(),
        dump_sigma(spec, n)
    );
    debug_assert!(
        env.snaps.peak <= n * n + n,
        "peak live snapshots {} exceeds the paper's §2.2.2 bound n²+n = {}; {}",
        env.snaps.peak,
        n * n + n,
        dump_sigma(spec, n)
    );
    if gep_obs::enabled() {
        gep_obs::counter_add("cgep_reduced.saves", env.snaps.saves);
        gep_obs::counter_add("cgep_reduced.snapshot_reads", env.snaps.reads);
        gep_obs::counter_add("cgep_reduced.reads_from_cell", env.snaps.reads_from_cell);
        gep_obs::gauge_set("cgep_reduced.peak_live_snapshots", env.snaps.peak as f64);
    }
    ReducedSpaceStats {
        peak_live_snapshots: env.snaps.peak,
        saves: env.snaps.saves,
        reads: env.snaps.reads,
        reads_from_cell: env.snaps.reads_from_cell,
        claimed_bound: n * n + n,
    }
}

/// Convenience wrapper for in-core matrices.
pub fn cgep_reduced_matrix<S>(
    spec: &S,
    c: &mut Matrix<S::Elem>,
    base_size: usize,
) -> ReducedSpaceStats
where
    S: GepSpec,
{
    cgep_reduced(spec, c, base_size)
}

struct Env<'s, S: GepSpec> {
    base: usize,
    snaps: SnapStore<'s, S>,
}

impl<S: GepSpec> Env<'_, S> {
    #[inline]
    fn apply<St: CellStore<S::Elem> + ?Sized>(&mut self, c: &mut St, i: usize, j: usize, k: usize) {
        let spec = self.snaps.spec;
        let n = self.snaps.n;
        let x = c.read(i, j);
        let u = self.snaps.consume(c, if j > k { U1 } else { U0 }, i, k);
        let v = self.snaps.consume(c, if i > k { V1 } else { V0 }, k, j);
        let w = self
            .snaps
            .consume(c, if i > k || (i == k && j > k) { U1 } else { U0 }, k, k);
        let nv = spec.update(i, j, k, x, u, v, w);
        // This write destroys the state "after tau(i, j, k-1)" of (i, j);
        // copy it out for any slot that still needs it.
        let tau_prev = spec.tau(n, i, j, k as i64 - 1);
        self.snaps.on_destroy(i, j, x, tau_prev);
        c.write(i, j, nv);
    }

    fn h_rec<St: CellStore<S::Elem> + ?Sized>(
        &mut self,
        c: &mut St,
        i0: usize,
        j0: usize,
        k0: usize,
        s: usize,
    ) {
        if !self
            .snaps
            .spec
            .sigma_intersects((i0, i0 + s - 1), (j0, j0 + s - 1), (k0, k0 + s - 1))
        {
            return;
        }
        gep_obs::counter_add("cgep_reduced.calls", 1);
        let _span = gep_obs::span("H", "cgep_reduced")
            .arg("i0", i0 as i64)
            .arg("j0", j0 as i64)
            .arg("k0", k0 as i64)
            .arg("s", s as i64);
        if s <= self.base {
            if gep_obs::enabled() {
                gep_obs::counter_add("cgep_reduced.base_cases", 1);
                gep_obs::counter_add(
                    "cgep_reduced.updates",
                    crate::iterative::sigma_count_box(
                        self.snaps.spec,
                        (i0, i0 + s - 1),
                        (j0, j0 + s - 1),
                        (k0, k0 + s - 1),
                    ),
                );
            }
            for k in k0..k0 + s {
                for i in i0..i0 + s {
                    for j in j0..j0 + s {
                        if self.snaps.spec.in_sigma(i, j, k) {
                            self.apply(c, i, j, k);
                        }
                    }
                }
            }
            return;
        }
        let h = s / 2;
        self.h_rec(c, i0, j0, k0, h);
        self.h_rec(c, i0, j0 + h, k0, h);
        self.h_rec(c, i0 + h, j0, k0, h);
        self.h_rec(c, i0 + h, j0 + h, k0, h);
        self.h_rec(c, i0 + h, j0 + h, k0 + h, h);
        self.h_rec(c, i0 + h, j0, k0 + h, h);
        self.h_rec(c, i0, j0 + h, k0 + h, h);
        self.h_rec(c, i0, j0, k0 + h, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::gep_iterative;
    use crate::spec::{ClosureSpec, ExplicitSet, SumSpec};

    #[test]
    fn counterexample_fixed_by_reduced_cgep() {
        let init = Matrix::from_rows(&[vec![0i64, 0], vec![0, 1]]);
        let mut h = init.clone();
        let mut g = init.clone();
        cgep_reduced(&SumSpec, &mut h, 1);
        gep_iterative(&SumSpec, &mut g);
        assert_eq!(h, g);
        assert_eq!(h[(1, 0)], 2);
    }

    #[test]
    fn reduced_equals_full_on_sum_spec() {
        for n in [2usize, 4, 8, 16] {
            let init = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as i64 - 5);
            let mut r = init.clone();
            let mut g = init.clone();
            let stats = cgep_reduced(&SumSpec, &mut r, 1);
            gep_iterative(&SumSpec, &mut g);
            assert_eq!(r, g, "n={n}");
            assert!(stats.reads > 0);
        }
    }

    #[test]
    fn exhaustive_all_sigma_n2() {
        let all: Vec<(usize, usize, usize)> = (0..2)
            .flat_map(|i| (0..2).flat_map(move |j| (0..2).map(move |k| (i, j, k))))
            .collect();
        for mask in 0u32..256 {
            let sigma = ExplicitSet::from_iter(
                all.iter()
                    .enumerate()
                    .filter(|(b, _)| mask & (1 << b) != 0)
                    .map(|(_, &t)| t),
            );
            let spec = ClosureSpec::new(
                |i, j, k, x: i64, u, v, w| {
                    x.wrapping_mul(3)
                        .wrapping_add(u.wrapping_mul(5))
                        .wrapping_sub(v.wrapping_mul(7))
                        .wrapping_add(w.wrapping_mul(11))
                        .wrapping_add((i + 2 * j + 4 * k) as i64)
                },
                sigma,
            );
            let init = Matrix::from_rows(&[vec![1i64, 2], vec![3, 4]]);
            let mut h = init.clone();
            let mut g = init.clone();
            let stats = cgep_reduced(&spec, &mut h, 1);
            gep_iterative(&spec, &mut g);
            assert_eq!(h, g, "mask={mask:#b}");
            assert!(
                stats.peak_live_snapshots <= stats.claimed_bound,
                "mask={mask:#b}: {} > {}",
                stats.peak_live_snapshots,
                stats.claimed_bound
            );
        }
    }

    #[test]
    fn random_sigma_matches_g_and_respects_bound() {
        let mut state = 0xDEADBEEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [4usize, 8] {
            for trial in 0..25 {
                let mut triples = vec![];
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            if rng() % 4 == 0 {
                                triples.push((i, j, k));
                            }
                        }
                    }
                }
                let spec = ClosureSpec::new(
                    |i, j, k, x: i64, u, v, w| {
                        x.wrapping_add(u.wrapping_mul(2))
                            .wrapping_add(v.wrapping_mul(3))
                            .wrapping_sub(w)
                            .wrapping_add((i * 2 + j * 3 + k * 5) as i64)
                    },
                    ExplicitSet::from_iter(triples),
                );
                let init = Matrix::from_fn(n, n, |i, j| (i * n + j) as i64 + 1);
                let mut h = init.clone();
                let mut g = init.clone();
                let stats = cgep_reduced(&spec, &mut h, 1);
                gep_iterative(&spec, &mut g);
                assert_eq!(h, g, "n={n} trial={trial}");
                assert!(
                    stats.peak_live_snapshots <= stats.claimed_bound,
                    "n={n} trial={trial}: {} > {}",
                    stats.peak_live_snapshots,
                    stats.claimed_bound
                );
            }
        }
    }

    #[test]
    fn peak_live_within_paper_bound_on_full_sigma() {
        // The paper claims the reduced variant needs <= n² + n extra cells.
        for n in [4usize, 8, 16, 32] {
            let init = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) % 9) as i64);
            let mut c = init.clone();
            let stats = cgep_reduced(&SumSpec, &mut c, 1);
            assert!(
                stats.peak_live_snapshots <= stats.claimed_bound,
                "n={n}: peak {} exceeds claimed n²+n = {}",
                stats.peak_live_snapshots,
                stats.claimed_bound
            );
        }
    }

    #[test]
    fn base_size_invariant() {
        let n = 16;
        let init = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 13) as i64 - 6);
        let mut reference = init.clone();
        cgep_reduced(&SumSpec, &mut reference, 1);
        for base in [2usize, 4, 8, 16] {
            let mut c = init.clone();
            cgep_reduced(&SumSpec, &mut c, base);
            assert_eq!(c, reference, "base={base}");
        }
    }

    #[test]
    fn stats_counts_are_consistent() {
        let n = 8;
        let mut c = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
        let stats = cgep_reduced(&SumSpec, &mut c, 1);
        // Every update performs exactly 3 snapshot-slot reads (u, v, w).
        assert_eq!(stats.reads, (n * n * n * 3) as u64);
        assert!(stats.saves > 0);
        assert!(stats.reads_from_cell > 0, "some reads hit the live cell");
    }
}
