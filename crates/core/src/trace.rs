//! Execution tracing and theorem verification.
//!
//! The paper's structural results are *testable*: this module records the
//! exact update stream an engine performs, together with the values each
//! update read and wrote, and checks them against
//!
//! * **Theorem 2.1** — I-GEP performs exactly the updates of `Σ`, each one
//!   exactly once, and updates each cell in increasing `k` order;
//! * **Theorem 2.2 / Table 1** — immediately before I-GEP applies
//!   `⟨i,j,k⟩`, the operands are in the states characterised by `π` and
//!   `δ`, while iterative GEP reads the Table 1 column-G states.
//!
//! These checks run in the test suites of this crate and `gep-bench`'s
//! `repro table1` subcommand.

use crate::igep::igep;
use crate::iterative::gep_iterative;
use crate::spec::GepSpec;
use crate::theory::{delta_state, g_state_u, g_state_v, g_state_w, pi_state};
use gep_matrix::Matrix;
use std::cell::RefCell;
use std::collections::HashMap;

/// One applied update with the operand values it read and the value it
/// wrote.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateRecord<T> {
    /// Target row.
    pub i: usize,
    /// Target column.
    pub j: usize,
    /// Update index.
    pub k: usize,
    /// `c[i,j]` read.
    pub x: T,
    /// `c[i,k]` read.
    pub u: T,
    /// `c[k,j]` read.
    pub v: T,
    /// `c[k,k]` read.
    pub w: T,
    /// Value written to `c[i,j]`.
    pub out: T,
}

/// A spec wrapper that records every applied update in order.
struct Recorder<'s, S: GepSpec> {
    inner: &'s S,
    log: RefCell<Vec<UpdateRecord<S::Elem>>>,
}

impl<S: GepSpec> GepSpec for Recorder<'_, S> {
    type Elem = S::Elem;
    fn update(
        &self,
        i: usize,
        j: usize,
        k: usize,
        x: Self::Elem,
        u: Self::Elem,
        v: Self::Elem,
        w: Self::Elem,
    ) -> Self::Elem {
        let out = self.inner.update(i, j, k, x, u, v, w);
        self.log.borrow_mut().push(UpdateRecord {
            i,
            j,
            k,
            x,
            u,
            v,
            w,
            out,
        });
        out
    }
    fn in_sigma(&self, i: usize, j: usize, k: usize) -> bool {
        self.inner.in_sigma(i, j, k)
    }
    fn sigma_intersects(&self, ib: (usize, usize), jb: (usize, usize), kb: (usize, usize)) -> bool {
        self.inner.sigma_intersects(ib, jb, kb)
    }
    fn tau(&self, n: usize, i: usize, j: usize, l: i64) -> Option<usize> {
        self.inner.tau(n, i, j, l)
    }
}

/// Runs iterative GEP on `c`, returning the time-ordered update records.
pub fn trace_g<S: GepSpec>(spec: &S, c: &mut Matrix<S::Elem>) -> Vec<UpdateRecord<S::Elem>> {
    let rec = Recorder {
        inner: spec,
        log: RefCell::new(Vec::new()),
    };
    gep_iterative(&rec, c);
    rec.log.into_inner()
}

/// Runs I-GEP (base case 1, the literal Figure 2) on `c`, returning the
/// time-ordered update records.
pub fn trace_igep<S: GepSpec>(spec: &S, c: &mut Matrix<S::Elem>) -> Vec<UpdateRecord<S::Elem>> {
    let rec = Recorder {
        inner: spec,
        log: RefCell::new(Vec::new()),
    };
    igep(&rec, c, 1);
    rec.log.into_inner()
}

/// Verifies Theorem 2.1 for `spec` on the given input: the I-GEP trace is
/// a permutation of the G trace with no duplicates, and each cell's
/// updates appear in increasing `k`.
///
/// Returns `Err` with a description of the first violation.
pub fn check_theorem_2_1<S: GepSpec>(spec: &S, init: &Matrix<S::Elem>) -> Result<(), String> {
    let g_trace = trace_g(spec, &mut init.clone());
    let f_trace = trace_igep(spec, &mut init.clone());

    let gset: std::collections::HashSet<(usize, usize, usize)> =
        g_trace.iter().map(|r| (r.i, r.j, r.k)).collect();
    let fset: std::collections::HashSet<(usize, usize, usize)> =
        f_trace.iter().map(|r| (r.i, r.j, r.k)).collect();
    if gset != fset {
        return Err(format!(
            "Σ_F != Σ_G: F-only {:?}, G-only {:?}",
            fset.difference(&gset).take(3).collect::<Vec<_>>(),
            gset.difference(&fset).take(3).collect::<Vec<_>>()
        ));
    }
    if f_trace.len() != fset.len() {
        return Err("F applied some update more than once".into());
    }
    let mut last_k: HashMap<(usize, usize), usize> = HashMap::new();
    for r in &f_trace {
        if let Some(&prev) = last_k.get(&(r.i, r.j)) {
            if r.k <= prev {
                return Err(format!(
                    "cell ({}, {}) updated with k={} after k={}",
                    r.i, r.j, r.k, prev
                ));
            }
        }
        last_k.insert((r.i, r.j), r.k);
    }
    Ok(())
}

/// Per-cell state table reconstructed from a trace: `state(cell, m)` =
/// value after all of the cell's updates with `k' < m`.
pub struct StateTable<T> {
    init: Matrix<T>,
    /// For each cell, its updates as (k, value-after), increasing in k.
    hist: HashMap<(usize, usize), Vec<(usize, T)>>,
}

impl<T: Copy> StateTable<T> {
    /// Builds from an initial matrix and a trace (which must update each
    /// cell in increasing `k` — guaranteed for G and, by Theorem 2.1, for
    /// I-GEP).
    pub fn new(init: Matrix<T>, trace: &[UpdateRecord<T>]) -> Self {
        let mut hist: HashMap<(usize, usize), Vec<(usize, T)>> = HashMap::new();
        for r in trace {
            let h = hist.entry((r.i, r.j)).or_default();
            debug_assert!(h.last().is_none_or(|&(k, _)| k < r.k));
            h.push((r.k, r.out));
        }
        Self { init, hist }
    }

    /// `state m` of cell `(i, j)`: value after all updates with `k' < m`.
    pub fn state(&self, i: usize, j: usize, m: usize) -> T {
        match self.hist.get(&(i, j)) {
            None => self.init[(i, j)],
            Some(h) => h
                .iter()
                .rev()
                .find(|&&(k, _)| k < m)
                .map_or(self.init[(i, j)], |&(_, v)| v),
        }
    }
}

/// Verifies Theorem 2.2 (and Table 1 column F): each operand value I-GEP
/// reads equals the π/δ-characterised state, reconstructed from the trace
/// itself.
pub fn check_theorem_2_2<S: GepSpec>(spec: &S, init: &Matrix<S::Elem>) -> Result<(), String> {
    let n = init.n();
    let trace = trace_igep(spec, &mut init.clone());
    let table = StateTable::new(init.clone(), &trace);
    for r in &trace {
        let (i, j, k) = (r.i, r.j, r.k);
        let expect_x = table.state(i, j, k);
        let expect_u = table.state(i, k, pi_state(n, j, k));
        let expect_v = table.state(k, j, pi_state(n, i, k));
        let expect_w = table.state(k, k, delta_state(n, i, j, k));
        if r.x != expect_x {
            return Err(format!(
                "⟨{i},{j},{k}⟩: x read {:?}, Thm2.2 expects {:?}",
                r.x, expect_x
            ));
        }
        if r.u != expect_u {
            return Err(format!(
                "⟨{i},{j},{k}⟩: u read {:?}, Thm2.2 expects {:?}",
                r.u, expect_u
            ));
        }
        if r.v != expect_v {
            return Err(format!(
                "⟨{i},{j},{k}⟩: v read {:?}, Thm2.2 expects {:?}",
                r.v, expect_v
            ));
        }
        if r.w != expect_w {
            return Err(format!(
                "⟨{i},{j},{k}⟩: w read {:?}, Thm2.2 expects {:?}",
                r.w, expect_w
            ));
        }
    }
    Ok(())
}

/// Verifies Table 1 column G: iterative GEP reads the
/// `k + Iverson-bracket` states.
pub fn check_table1_g<S: GepSpec>(spec: &S, init: &Matrix<S::Elem>) -> Result<(), String> {
    let trace = trace_g(spec, &mut init.clone());
    let table = StateTable::new(init.clone(), &trace);
    for r in &trace {
        let (i, j, k) = (r.i, r.j, r.k);
        let checks = [
            ("x", r.x, table.state(i, j, k)),
            ("u", r.u, table.state(i, k, g_state_u(i, j, k))),
            ("v", r.v, table.state(k, j, g_state_v(i, j, k))),
            ("w", r.w, table.state(k, k, g_state_w(i, j, k))),
        ];
        for (name, got, want) in checks {
            if got != want {
                return Err(format!(
                    "⟨{i},{j},{k}⟩: {name} read {got:?}, Table 1 expects {want:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClosureSpec, ExplicitSet, SumSpec};

    fn mix_spec(sigma: ExplicitSet) -> impl GepSpec<Elem = i64> {
        ClosureSpec::new(
            |i, j, k, x: i64, u, v, w| {
                x.wrapping_mul(3)
                    .wrapping_add(u.wrapping_mul(5))
                    .wrapping_add(v.wrapping_mul(7))
                    .wrapping_add(w.wrapping_mul(11))
                    .wrapping_add((i + 31 * j + 61 * k) as i64)
            },
            sigma,
        )
    }

    fn full_sigma(n: usize) -> ExplicitSet {
        ExplicitSet::from_iter(
            (0..n).flat_map(|i| (0..n).flat_map(move |j| (0..n).map(move |k| (i, j, k)))),
        )
    }

    fn random_sigma(n: usize, seed: u64, keep_mod: u64) -> ExplicitSet {
        let mut s = seed;
        let mut v = vec![];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s % keep_mod == 0 {
                        v.push((i, j, k));
                    }
                }
            }
        }
        ExplicitSet::from_iter(v)
    }

    fn init(n: usize) -> Matrix<i64> {
        Matrix::from_fn(n, n, |i, j| (i * n + j) as i64 + 1)
    }

    #[test]
    fn theorem_2_1_full_sigma() {
        for n in [1usize, 2, 4, 8, 16] {
            let spec = mix_spec(full_sigma(n));
            check_theorem_2_1(&spec, &init(n)).unwrap();
        }
    }

    #[test]
    fn theorem_2_1_random_sigma() {
        for n in [4usize, 8] {
            for seed in 1..6 {
                let spec = mix_spec(random_sigma(n, seed, 3));
                check_theorem_2_1(&spec, &init(n)).unwrap();
            }
        }
    }

    #[test]
    fn theorem_2_2_full_sigma() {
        for n in [1usize, 2, 4, 8, 16] {
            let spec = mix_spec(full_sigma(n));
            check_theorem_2_2(&spec, &init(n)).unwrap();
        }
    }

    #[test]
    fn theorem_2_2_random_sigma() {
        for n in [4usize, 8] {
            for seed in 10..15 {
                let spec = mix_spec(random_sigma(n, seed, 4));
                check_theorem_2_2(&spec, &init(n)).unwrap();
            }
        }
    }

    #[test]
    fn table1_g_column() {
        for n in [2usize, 4, 8] {
            let spec = mix_spec(full_sigma(n));
            check_table1_g(&spec, &init(n)).unwrap();
            let spec = mix_spec(random_sigma(n, 99, 2));
            check_table1_g(&spec, &init(n)).unwrap();
        }
    }

    #[test]
    fn g_and_f_orders_differ_but_sets_agree() {
        // On the 2×2 counterexample the *sets* of updates agree even though
        // the interleaving (and hence the result) differs.
        let init = Matrix::from_rows(&[vec![0i64, 0], vec![0, 1]]);
        check_theorem_2_1(&SumSpec, &init).unwrap();
        let g = trace_g(&SumSpec, &mut init.clone());
        let f = trace_igep(&SumSpec, &mut init.clone());
        assert_eq!(g.len(), 8);
        assert_eq!(f.len(), 8);
        let gsets: Vec<_> = g.iter().map(|r| (r.i, r.j, r.k)).collect();
        let fsets: Vec<_> = f.iter().map(|r| (r.i, r.j, r.k)).collect();
        assert_ne!(gsets, fsets, "total orders should differ");
    }

    #[test]
    fn state_table_reconstruction() {
        let spec = mix_spec(full_sigma(2));
        let i0 = init(2);
        let trace = trace_g(&spec, &mut i0.clone());
        let t = StateTable::new(i0.clone(), &trace);
        // State 0 is the initial value everywhere.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(t.state(i, j, 0), i0[(i, j)]);
            }
        }
        // State 2 of any cell is its final value (all k' < 2 applied).
        let mut fin = i0.clone();
        gep_iterative(&spec, &mut fin);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(t.state(i, j, 2), fin[(i, j)]);
            }
        }
    }
}
