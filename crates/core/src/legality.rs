//! Empirical I-GEP legality checking — the Section 2.3 compiler angle.
//!
//! The paper frames I-GEP/C-GEP as loop transformations: C-GEP is a legal
//! transformation of *any* GEP loop nest, I-GEP only of some (the
//! technical report gives sufficient conditions). An optimising compiler
//! applying I-GEP therefore needs a legality check. This module provides
//! the testing-based check the workspace itself uses: run I-GEP and the
//! defining iterative loop side by side on randomised inputs and compare
//! — with structured witnesses on divergence.
//!
//! Testing cannot *prove* legality (it is sound only for rejection), but
//! combined with Theorem 2.2 it is sharper than it looks: I-GEP's operand
//! states differ from G's in precisely characterised ways, so a divergence
//! almost always manifests at small `n` with mixing update functions —
//! the §2.2.1 counterexample already shows up at `n = 2`.

use crate::igep::igep;
use crate::iterative::gep_iterative;
use crate::spec::GepSpec;
use gep_matrix::Matrix;

/// A divergence witness: the first input on which I-GEP and iterative GEP
/// disagreed.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence<T> {
    /// Matrix side of the failing instance.
    pub n: usize,
    /// The initial matrix.
    pub input: Matrix<T>,
    /// Iterative GEP's result (the paradigm's semantics).
    pub expected: Matrix<T>,
    /// I-GEP's result.
    pub got: Matrix<T>,
    /// First differing cell.
    pub cell: (usize, usize),
}

/// Verdict of an empirical legality check.
#[derive(Clone, Debug, PartialEq)]
pub enum Legality<T> {
    /// No divergence found across the tested instances — I-GEP *appears*
    /// legal for this spec (use C-GEP when a guarantee is required).
    AppearsLegal {
        /// Number of (n, input) instances exercised.
        instances_tested: usize,
    },
    /// I-GEP provably diverges from the paradigm's semantics on this
    /// spec: transformation rejected.
    Illegal(Box<Divergence<T>>),
}

/// Checks I-GEP legality for `spec` empirically: for each side in `sizes`
/// (powers of two) and `trials` random matrices drawn via `gen(n, trial,
/// i, j)`, compares I-GEP with iterative GEP and reports the first
/// divergence.
pub fn check_igep_legality<S>(
    spec: &S,
    sizes: &[usize],
    trials: usize,
    mut gen: impl FnMut(usize, usize, usize, usize) -> S::Elem,
) -> Legality<S::Elem>
where
    S: GepSpec,
{
    let mut tested = 0;
    for &n in sizes {
        assert!(n.is_power_of_two(), "sizes must be powers of two");
        for t in 0..trials {
            let input = Matrix::from_fn(n, n, |i, j| gen(n, t, i, j));
            let mut expected = input.clone();
            gep_iterative(spec, &mut expected);
            let mut got = input.clone();
            igep(spec, &mut got, 1);
            tested += 1;
            if got != expected {
                let cell = (0..n)
                    .flat_map(|i| (0..n).map(move |j| (i, j)))
                    .find(|&(i, j)| got[(i, j)] != expected[(i, j)])
                    .expect("matrices differ");
                return Legality::Illegal(Box::new(Divergence {
                    n,
                    input,
                    expected,
                    got,
                    cell,
                }));
            }
        }
    }
    Legality::AppearsLegal {
        instances_tested: tested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SumSpec;

    fn i64_gen(n: usize, t: usize, i: usize, j: usize) -> i64 {
        let mut s = (n * 1_000_003 + t * 10_007 + i * 101 + j) as u64 | 1;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 200) as i64 - 100
    }

    #[test]
    fn sum_spec_is_rejected_with_witness() {
        match check_igep_legality(&SumSpec, &[2, 4], 5, i64_gen) {
            Legality::Illegal(d) => {
                assert!(d.n == 2 || d.n == 4);
                let (i, j) = d.cell;
                assert_ne!(d.got[(i, j)], d.expected[(i, j)]);
            }
            other => panic!("SumSpec must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn min_plus_appears_legal() {
        struct MinPlus;
        impl GepSpec for MinPlus {
            type Elem = i64;
            fn update(&self, _: usize, _: usize, _: usize, x: i64, u: i64, v: i64, _: i64) -> i64 {
                x.min(u.saturating_add(v))
            }
            fn in_sigma(&self, _: usize, _: usize, _: usize) -> bool {
                true
            }
        }
        // Well-formed distance matrices: zero diagonal, non-negative
        // weights (with arbitrary negative diagonals min-plus develops
        // negative cycles, where even the iterative orderings disagree).
        let fw_gen = |n: usize, t: usize, i: usize, j: usize| {
            if i == j {
                0
            } else {
                i64_gen(n, t, i, j).abs() + 1
            }
        };
        match check_igep_legality(&MinPlus, &[2, 4, 8, 16], 8, fw_gen) {
            Legality::AppearsLegal { instances_tested } => assert_eq!(instances_tested, 32),
            Legality::Illegal(d) => panic!("min-plus must pass: {:?}", d.cell),
        }
    }

    #[test]
    fn sum_spec_witness_is_reproducible() {
        // The returned witness re-diverges when replayed.
        if let Legality::Illegal(d) = check_igep_legality(&SumSpec, &[2], 1, i64_gen) {
            let mut again = d.input.clone();
            igep(&SumSpec, &mut again, 1);
            assert_eq!(again, d.got);
            let mut g = d.input.clone();
            gep_iterative(&SumSpec, &mut g);
            assert_eq!(g, d.expected);
        } else {
            panic!("expected divergence");
        }
    }
}
