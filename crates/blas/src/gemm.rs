//! Blocked, packing `dgemm` in the GotoBLAS style.
//!
//! Loop structure (outside in): `jc` over `NC`-wide column panels of
//! `B`/`C`, `pc` over `KC`-deep rank slices (pack `B` panel), `ic` over
//! `MC`-tall row panels of `A`/`C` (pack `A` panel), then the macro-kernel
//! sweeps `MR × NR` register tiles. Packing rearranges panel data so the
//! micro-kernel streams contiguously — this is precisely the machinery a
//! cache-aware BLAS tunes per machine, standing in contrast to the
//! cache-oblivious engines it is benchmarked against.

use gep_matrix::Matrix;

/// Register tile height.
const MR: usize = 4;
/// Register tile width.
const NR: usize = 4;

/// Cache-aware blocking parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmParams {
    /// Rows of the packed `A` panel (targets L2).
    pub mc: usize,
    /// Depth of the rank slice (targets L1 residency of a `B` micro-panel).
    pub kc: usize,
    /// Columns of the packed `B` panel (targets L3/TLB reach).
    pub nc: usize,
}

impl Default for GemmParams {
    fn default() -> Self {
        // Tuned for the simulated Table-2-class machines: 64 KB L1 /
        // 512 KB–1 MB L2, 64 B lines.
        Self {
            mc: 128,
            kc: 128,
            nc: 512,
        }
    }
}

/// `C += A · B` with default blocking.
///
/// # Panics
/// Panics unless all three matrices are square with equal side.
pub fn dgemm(c: &mut Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>) {
    dgemm_with(c, a, b, GemmParams::default());
}

/// `C += A · B` with explicit blocking parameters.
///
/// # Panics
/// Panics unless all three matrices are square with equal side.
pub fn dgemm_with(c: &mut Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>, p: GemmParams) {
    let n = c.n();
    assert!(a.n() == n && b.n() == n);
    dgemm_rect_with(c, a, b, p);
}

/// Rectangular `C (m×n) += A (m×k) · B (k×n)` with default blocking.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn dgemm_rect(c: &mut Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>) {
    dgemm_rect_with(c, a, b, GemmParams::default());
}

/// Rectangular `C += A · B` with explicit blocking parameters.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn dgemm_rect_with(c: &mut Matrix<f64>, a: &Matrix<f64>, b: &Matrix<f64>, p: GemmParams) {
    let (m, n, kdim) = (c.rows(), c.cols(), a.cols());
    assert_eq!(a.rows(), m, "A rows must match C rows");
    assert_eq!(b.rows(), kdim, "B rows must match A cols");
    assert_eq!(b.cols(), n, "B cols must match C cols");
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    let mut apack = vec![0.0f64; p.mc * p.kc];
    let mut bpack = vec![0.0f64; p.kc * p.nc];
    for jc in (0..n).step_by(p.nc) {
        let ncb = p.nc.min(n - jc);
        for pc in (0..kdim).step_by(p.kc) {
            let kcb = p.kc.min(kdim - pc);
            pack_b(&mut bpack, b, pc, jc, kcb, ncb);
            for ic in (0..m).step_by(p.mc) {
                let mcb = p.mc.min(m - ic);
                pack_a(&mut apack, a, ic, pc, mcb, kcb);
                macro_kernel(c, &apack, &bpack, ic, jc, mcb, ncb, kcb);
            }
        }
    }
}

/// Packs `A[ic..ic+mcb, pc..pc+kcb]` into `MR`-row micro-panels:
/// within a micro-panel, layout is `k`-major (`[k][mr]`), zero-padded to a
/// full `MR` rows.
fn pack_a(apack: &mut [f64], a: &Matrix<f64>, ic: usize, pc: usize, mcb: usize, kcb: usize) {
    let mut dst = 0;
    for ir in (0..mcb).step_by(MR) {
        let rows = MR.min(mcb - ir);
        for k in 0..kcb {
            for r in 0..MR {
                apack[dst] = if r < rows {
                    a[(ic + ir + r, pc + k)]
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Packs `B[pc..pc+kcb, jc..jc+ncb]` into `NR`-column micro-panels:
/// layout `[k][nr]`, zero-padded to full `NR` columns.
fn pack_b(bpack: &mut [f64], b: &Matrix<f64>, pc: usize, jc: usize, kcb: usize, ncb: usize) {
    let mut dst = 0;
    for jr in (0..ncb).step_by(NR) {
        let cols = NR.min(ncb - jr);
        for k in 0..kcb {
            for cidx in 0..NR {
                bpack[dst] = if cidx < cols {
                    b[(pc + k, jc + jr + cidx)]
                } else {
                    0.0
                };
                dst += 1;
            }
        }
    }
}

/// Sweeps the packed panels with the register micro-kernel.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    c: &mut Matrix<f64>,
    apack: &[f64],
    bpack: &[f64],
    ic: usize,
    jc: usize,
    mcb: usize,
    ncb: usize,
    kcb: usize,
) {
    for jr in (0..ncb).step_by(NR) {
        let cols = NR.min(ncb - jr);
        let bp = &bpack[(jr / NR) * kcb * NR..];
        for ir in (0..mcb).step_by(MR) {
            let rows = MR.min(mcb - ir);
            let ap = &apack[(ir / MR) * kcb * MR..];
            micro_kernel(c, ap, bp, kcb, ic + ir, jc + jr, rows, cols);
        }
    }
}

/// The `MR × NR` register tile: `MR·NR` scalar accumulators updated over
/// the full `kc` depth, then spilled to `C` once.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    c: &mut Matrix<f64>,
    ap: &[f64],
    bp: &[f64],
    kc: usize,
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for k in 0..kc {
        let av = &ap[k * MR..k * MR + MR];
        let bv = &bp[k * NR..k * NR + NR];
        for r in 0..MR {
            let ar = av[r];
            for s in 0..NR {
                acc[r][s] += ar * bv[s];
            }
        }
    }
    for (r, arow) in acc.iter().enumerate().take(rows) {
        let crow = c.row_mut(i0 + r);
        for s in 0..cols {
            crow[j0 + s] += arow[s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_apps::reference::matmul_reference;

    fn rnd(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn matches_reference_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 33, 64, 100] {
            let a = rnd(n, 1 + n as u64);
            let b = rnd(n, 2 + n as u64);
            let mut c = Matrix::square(n, 0.0);
            dgemm(&mut c, &a, &b);
            let want = matmul_reference(&a, &b);
            assert!(
                c.approx_eq(&want, 1e-9),
                "n={n}: err {}",
                c.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn accumulates_into_c() {
        let n = 8;
        let a = rnd(n, 5);
        let b = rnd(n, 6);
        let mut c = Matrix::square(n, 2.0);
        dgemm(&mut c, &a, &b);
        let mut want = matmul_reference(&a, &b);
        for i in 0..n {
            for j in 0..n {
                want[(i, j)] += 2.0;
            }
        }
        assert!(c.approx_eq(&want, 1e-9));
    }

    #[test]
    fn blocking_parameters_do_not_change_result() {
        let n = 48;
        let a = rnd(n, 9);
        let b = rnd(n, 10);
        let mut reference = Matrix::square(n, 0.0);
        dgemm_with(&mut reference, &a, &b, GemmParams::default());
        for (mc, kc, nc) in [(4, 4, 4), (8, 16, 12), (16, 8, 48), (64, 64, 64)] {
            let mut c = Matrix::square(n, 0.0);
            dgemm_with(&mut c, &a, &b, GemmParams { mc, kc, nc });
            assert!(
                c.approx_eq(&reference, 1e-9),
                "mc={mc} kc={kc} nc={nc}: err {}",
                c.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn identity_product() {
        let n = 16;
        let a = rnd(n, 20);
        let id = Matrix::identity(n);
        let mut c = Matrix::square(n, 0.0);
        dgemm(&mut c, &a, &id);
        assert!(c.approx_eq(&a, 1e-12));
    }
}
