//! Right-looking blocked LU / Gaussian elimination without pivoting
//! (the FLAME-on-GotoBLAS substitute of Figure 10).
//!
//! For each `panel`-wide diagonal block:
//!
//! 1. factor the current column panel unblocked (compute multipliers);
//! 2. triangular-solve the row panel (`U₁₂ ← L₁₁⁻¹ A₁₂`);
//! 3. rank-`panel` update of the trailing submatrix
//!    (`A₂₂ −= L₂₁ · U₁₂`) via the blocked [`dgemm`] — the BLAS-3 bulk of
//!    the work.

use crate::gemm::{dgemm_rect_with, GemmParams};
use gep_matrix::Matrix;

/// In-place blocked LU without pivoting: afterwards `a` holds `U` on and
/// above the diagonal, unit-`L`'s subdiagonal below it.
///
/// # Panics
/// Panics unless `a` is square and `panel >= 1`.
pub fn lu_blocked(a: &mut Matrix<f64>, panel: usize) {
    let n = a.n();
    assert!(panel >= 1);
    for kb in (0..n).step_by(panel) {
        let pb = panel.min(n - kb);
        // 1. Unblocked factorisation of the diagonal-and-below column
        //    panel A[kb.., kb..kb+pb].
        for k in kb..kb + pb {
            let pivot = a[(k, k)];
            for i in k + 1..n {
                let mult = a[(i, k)] / pivot;
                a[(i, k)] = mult;
                for j in k + 1..kb + pb {
                    let v = a[(k, j)];
                    a[(i, j)] -= mult * v;
                }
            }
        }
        if kb + pb >= n {
            break;
        }
        // 2. U12 <- L11^{-1} A12 (unit lower triangular solve, row panel).
        for k in kb..kb + pb {
            for i in kb..k {
                let l = a[(k, i)];
                for j in kb + pb..n {
                    let v = a[(i, j)];
                    a[(k, j)] -= l * v;
                }
            }
        }
        // 3. Trailing update A22 -= L21 * U12 as a rectangular dgemm on
        //    extracted panels (copy out, multiply blocked, write back).
        let m2 = n - (kb + pb);
        let l21 = Matrix::from_fn(m2, pb, |i, j| a[(kb + pb + i, kb + j)]);
        let u12 = Matrix::from_fn(pb, m2, |i, j| a[(kb + i, kb + pb + j)]);
        let mut prod = Matrix::filled(m2, m2, 0.0);
        dgemm_rect_with(&mut prod, &l21, &u12, GemmParams::default());
        for i in 0..m2 {
            for j in 0..m2 {
                a[(kb + pb + i, kb + pb + j)] -= prod[(i, j)];
            }
        }
    }
}

/// Blocked Gaussian elimination without pivoting: identical factorisation;
/// read the result's upper triangle as `U` (the subdiagonal holds the
/// multipliers, which plain GE discards).
pub fn ge_blocked(a: &mut Matrix<f64>, panel: usize) {
    lu_blocked(a, panel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_apps::reference::{ge_reference, matmul_reference};

    fn dd(n: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        let mut m = Matrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        });
        for i in 0..n {
            m[(i, i)] = n as f64 + 3.0;
        }
        m
    }

    #[test]
    fn lu_reconstructs_a() {
        for n in [4usize, 8, 16, 33, 64] {
            for panel in [1usize, 2, 8, 16] {
                let a = dd(n, n as u64 * 31 + panel as u64);
                let mut p = a.clone();
                lu_blocked(&mut p, panel);
                let (l, u) = gep_apps::lu::unpack(&p);
                let lu = matmul_reference(&l, &u);
                assert!(
                    lu.approx_eq(&a, 1e-8),
                    "n={n} panel={panel}: err {}",
                    lu.max_abs_diff(&a)
                );
            }
        }
    }

    #[test]
    fn upper_triangle_matches_unblocked_ge() {
        let n = 32;
        let a = dd(n, 17);
        let oracle = ge_reference(&a);
        for panel in [1usize, 4, 8, 32] {
            let mut p = a.clone();
            ge_blocked(&mut p, panel);
            for i in 0..n {
                for j in i..n {
                    assert!(
                        (p[(i, j)] - oracle[(i, j)]).abs() < 1e-8,
                        "panel={panel} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_gep_lu_engine() {
        let n = 32;
        let a = dd(n, 23);
        let mut blocked = a.clone();
        lu_blocked(&mut blocked, 8);
        let mut gep = a.clone();
        gep_apps::lu::lu_in_place(&mut gep, 8);
        assert!(
            blocked.approx_eq(&gep, 1e-8),
            "err {}",
            blocked.max_abs_diff(&gep)
        );
    }

    #[test]
    fn panel_one_equals_unblocked() {
        let n = 16;
        let a = dd(n, 29);
        let mut p1 = a.clone();
        lu_blocked(&mut p1, 1);
        let mut pn = a.clone();
        lu_blocked(&mut pn, n);
        assert!(p1.approx_eq(&pn, 1e-8));
    }
}
