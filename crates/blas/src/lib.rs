//! # gep-blaslike — the cache-aware baseline
//!
//! The paper compares cache-oblivious I-GEP against finely tuned
//! cache-*aware* BLAS (ATLAS-generated native BLAS and GotoBLAS, plus
//! FLAME's LU). Those libraries are proprietary-grade assembly; this crate
//! is the substitution documented in `DESIGN.md`: a portable Rust
//! implementation of the same *structure* —
//!
//! * [`dgemm`] — GotoBLAS-style blocked matrix multiplication:
//!   `KC × MC` packed panels of `A`, `KC × NC` packed panels of `B`, and a
//!   register-accumulating `4 × 4` micro-kernel;
//! * [`lu_blocked`] / [`ge_blocked`] — right-looking blocked LU /
//!   Gaussian elimination without pivoting whose trailing update is a
//!   rank-`panel` [`dgemm`], i.e. BLAS-3 rich like the FLAME routine the
//!   paper used.
//!
//! The point of the comparison is preserved: these routines know their
//! block sizes (cache-aware), against which the cache-oblivious engines
//! are measured in Figures 10 and 11.

pub mod gemm;
pub mod lu;
pub mod tiled_gep;

pub use gemm::{dgemm, dgemm_rect, dgemm_rect_with, dgemm_with, GemmParams};
pub use lu::{ge_blocked, lu_blocked};
pub use tiled_gep::gep_tiled;
