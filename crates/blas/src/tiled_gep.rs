//! Cache-aware **tiled GEP** — the Section 2.3 comparison point.
//!
//! The paper frames I-GEP/C-GEP as *cache-oblivious tiling* of the GEP
//! loop nest and contrasts it with the classic cache-aware tiling an
//! optimising compiler would emit. This module is that compiler output,
//! written by hand: a one-level blocking of the loop nest with an explicit
//! tile parameter, phase-ordered per `k`-block exactly like the `A/B/C/D`
//! decomposition —
//!
//! 1. the diagonal tile `(kb, kb)` (function `A`'s role),
//! 2. the `kb`-row of tiles (`B`), 3. the `kb`-column (`C`),
//! 4. all remaining tiles (`D`).
//!
//! This phase order is what makes naive GEP tiling legal: it preserves the
//! Table 1 operand states for every spec on which I-GEP is exact (the same
//! dependency argument as Figure 6, flattened to one level). Unlike I-GEP
//! it must be re-tuned per machine — that asymmetry is the point of §2.3.

use gep_core::{GepMat, GepSpec};
use gep_matrix::Matrix;

/// Runs cache-aware tiled GEP on `c` with square tiles of side `tile`.
///
/// Produces the same result as I-GEP (and iterative GEP) for every spec on
/// which I-GEP is exact.
///
/// # Panics
/// Panics unless `c` is square with a power-of-two side and `tile` is a
/// power of two `<= n`.
pub fn gep_tiled<S>(spec: &S, c: &mut Matrix<S::Elem>, tile: usize)
where
    S: GepSpec + Sync,
{
    let n = c.n();
    assert!(n.is_power_of_two(), "tiled GEP needs a power-of-two side");
    assert!(tile.is_power_of_two() && tile <= n, "bad tile size");
    let m = GepMat::new(c);
    let blocks = n / tile;
    for kb in 0..blocks {
        let k0 = kb * tile;
        let in_box = |r0: usize, c0: usize| {
            spec.sigma_intersects(
                (r0, r0 + tile - 1),
                (c0, c0 + tile - 1),
                (k0, k0 + tile - 1),
            )
        };
        // SAFETY: phases are sequential and each kernel call owns its
        // tile's writes; reads touch only tiles finalised (w.r.t. this
        // k-block) by earlier phases — the Figure 6 argument, one level.
        unsafe {
            // Phase A: diagonal tile.
            if in_box(k0, k0) {
                spec.kernel(m, k0, k0, k0, tile);
            }
            // Phase B: the k-row of tiles.
            for jb in 0..blocks {
                if jb != kb && in_box(k0, jb * tile) {
                    spec.kernel(m, k0, jb * tile, k0, tile);
                }
            }
            // Phase C: the k-column of tiles.
            for ib in 0..blocks {
                if ib != kb && in_box(ib * tile, k0) {
                    spec.kernel(m, ib * tile, k0, k0, tile);
                }
            }
            // Phase D: everything else.
            for ib in 0..blocks {
                for jb in 0..blocks {
                    if ib != kb && jb != kb && in_box(ib * tile, jb * tile) {
                        spec.kernel(m, ib * tile, jb * tile, k0, tile);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_apps::floyd_warshall::{FwSpec, Weight};
    use gep_apps::{GaussianSpec, TransitiveClosureSpec};
    use gep_core::gep_iterative;

    fn fw_input(n: usize, seed: u64) -> Matrix<i64> {
        let mut s = seed | 1;
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0
            } else {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s % 4 == 0 {
                    <i64 as Weight>::INFINITY
                } else {
                    (s % 40) as i64 + 1
                }
            }
        })
    }

    #[test]
    fn tiled_fw_matches_iterative_for_all_tiles() {
        for n in [8usize, 32] {
            let input = fw_input(n, n as u64);
            let mut oracle = input.clone();
            gep_iterative(&FwSpec::<i64>::new(), &mut oracle);
            for tile in [1usize, 2, 4, 8] {
                let mut c = input.clone();
                gep_tiled(&FwSpec::<i64>::new(), &mut c, tile);
                assert_eq!(c, oracle, "n={n} tile={tile}");
            }
            // tile == n degenerates to one big kernel call == iterative.
            let mut c = input.clone();
            gep_tiled(&FwSpec::<i64>::new(), &mut c, n);
            assert_eq!(c, oracle);
        }
    }

    #[test]
    fn tiled_gaussian_matches_iterative() {
        let n = 32;
        let mut s = 3u64;
        let mut input = Matrix::from_fn(n, n, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 1000.0 - 0.5
        });
        for i in 0..n {
            input[(i, i)] = n as f64 + 2.0;
        }
        let mut oracle = input.clone();
        gep_iterative(&GaussianSpec, &mut oracle);
        for tile in [4usize, 8, 16] {
            let mut c = input.clone();
            gep_tiled(&GaussianSpec, &mut c, tile);
            assert!(c.approx_eq(&oracle, 1e-9), "tile={tile}");
        }
    }

    #[test]
    fn tiled_transitive_closure_matches_iterative() {
        let n = 16;
        let mut s = 77u64;
        let input = Matrix::from_fn(n, n, |i, j| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            i == j || s % 5 == 0
        });
        let mut oracle = input.clone();
        gep_iterative(&TransitiveClosureSpec, &mut oracle);
        let mut c = input.clone();
        gep_tiled(&TransitiveClosureSpec, &mut c, 4);
        assert_eq!(c, oracle);
    }
}
