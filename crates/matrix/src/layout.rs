//! Address maps from matrix coordinates to linear memory addresses.
//!
//! The cache simulator (`gep-cachesim`) replays the exact sequence of
//! element addresses an algorithm touches. How `(i, j)` maps to an address
//! depends on the storage layout, so the map is factored out here as the
//! [`Layout`] trait with the three layouts the paper's experiments involve:
//! plain row-major, column-major (for contrast), and the Morton-tiled
//! layout of Section 4.2.

use crate::morton::interleave;

/// Maps a 2-D coordinate in an `n x n` matrix to a linear element index.
pub trait Layout: Send + Sync {
    /// Linear element index of `(i, j)` in an `n x n` matrix.
    fn index(&self, n: usize, i: usize, j: usize) -> usize;

    /// Human-readable layout name for reports.
    fn name(&self) -> &'static str;
}

/// Row-major layout: `index = i * n + j`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowMajor;

impl Layout for RowMajor {
    #[inline]
    fn index(&self, n: usize, i: usize, j: usize) -> usize {
        i * n + j
    }
    fn name(&self) -> &'static str {
        "row-major"
    }
}

/// Column-major layout: `index = j * n + i`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColMajor;

impl Layout for ColMajor {
    #[inline]
    fn index(&self, n: usize, i: usize, j: usize) -> usize {
        j * n + i
    }
    fn name(&self) -> &'static str {
        "col-major"
    }
}

/// Morton-ordered tiles of side `tile`, row-major within a tile
/// (the Section 4.2 layout).
#[derive(Clone, Copy, Debug)]
pub struct MortonTiled {
    /// Tile side; must be a power of two dividing `n`.
    pub tile: usize,
}

impl Layout for MortonTiled {
    #[inline]
    fn index(&self, n: usize, i: usize, j: usize) -> usize {
        debug_assert!(self.tile.is_power_of_two() && n % self.tile == 0);
        let b = self.tile;
        let z = interleave((i / b) as u32, (j / b) as u32) as usize;
        z * b * b + (i % b) * b + (j % b)
    }
    fn name(&self) -> &'static str {
        "morton-tiled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijective(layout: &dyn Layout, n: usize) {
        let mut seen = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                let k = layout.index(n, i, j);
                assert!(k < n * n, "{} out of range", layout.name());
                assert!(!seen[k], "{} collision", layout.name());
                seen[k] = true;
            }
        }
    }

    #[test]
    fn row_major_is_bijective_and_contiguous_rows() {
        assert_bijective(&RowMajor, 8);
        assert_eq!(RowMajor.index(8, 3, 0), 24);
        assert_eq!(RowMajor.index(8, 3, 7), 31);
    }

    #[test]
    fn col_major_is_bijective_and_contiguous_cols() {
        assert_bijective(&ColMajor, 8);
        assert_eq!(ColMajor.index(8, 0, 3), 24);
        assert_eq!(ColMajor.index(8, 7, 3), 31);
    }

    #[test]
    fn morton_tiled_is_bijective() {
        assert_bijective(&MortonTiled { tile: 2 }, 8);
        assert_bijective(&MortonTiled { tile: 4 }, 16);
    }

    #[test]
    fn morton_tiled_matches_tiled_matrix_offsets() {
        let t = crate::TiledMatrix::filled(16, 4, 0u8);
        let l = MortonTiled { tile: 4 };
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(l.index(16, i, j), t.offset(i, j));
            }
        }
    }

    #[test]
    fn tile_interior_is_contiguous() {
        let l = MortonTiled { tile: 4 };
        let base = l.index(16, 4, 8); // tile (1, 2), local (0, 0)
        assert_eq!(l.index(16, 4, 9), base + 1);
        assert_eq!(l.index(16, 5, 8), base + 4);
        assert_eq!(l.index(16, 7, 11), base + 15);
    }
}
