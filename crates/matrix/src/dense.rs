//! Owned, row-major dense matrices.

use crate::view::{MatView, MatViewMut};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned dense matrix in row-major order.
///
/// Indexing is zero-based `(row, col)`. The GEP literature uses one-based
/// indices `1..=n`; every algorithm crate in this workspace translates to
/// zero-based internally and documents the shift where it matters.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    /// Creates a `rows x cols` matrix with every element set to `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Creates an `n x n` matrix filled with `fill`.
    pub fn square(n: usize, fill: T) -> Self {
        Self::filled(n, n, fill)
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if row lengths differ.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix that embeds `self` into an `n x n` matrix with
    /// `n = max(next_pow2(rows), next_pow2(cols))`, padding with `pad`.
    ///
    /// Used to satisfy the paper's `n = 2^q` assumption for arbitrary inputs.
    pub fn padded(&self, pad: T) -> Matrix<T> {
        let n = crate::next_pow2(self.rows.max(self.cols));
        let mut out = Matrix::square(n, pad);
        for i in 0..self.rows {
            out.data[i * n..i * n + self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        out
    }

    /// Returns the top-left `rows x cols` corner as a new matrix
    /// (inverse of [`Matrix::padded`]).
    pub fn shrunk(&self, rows: usize, cols: usize) -> Matrix<T> {
        assert!(rows <= self.rows && cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self[(i, j)])
    }

    /// Element at `(i, j)` (copy).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[i * self.cols + j] = v;
    }

    /// Fills the whole matrix with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, other: &Matrix<T>) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.copy_from_slice(&other.data);
    }

    /// Out-of-place transpose.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Side length of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    #[inline]
    pub fn n(&self) -> usize {
        assert_eq!(self.rows, self.cols, "matrix is not square");
        self.rows
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Underlying row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Underlying mutable row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Immutable view of the whole matrix.
    pub fn view(&self) -> MatView<'_, T> {
        MatView::new(&self.data, self.rows, self.cols, self.cols)
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatViewMut<'_, T> {
        let (rows, cols) = (self.rows, self.cols);
        MatViewMut::new(&mut self.data, rows, cols, cols)
    }

    /// Iterator over `(row, col, &value)`.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, v)| (k / cols, k % cols, v))
    }
}

impl Matrix<f64> {
    /// Identity matrix of side `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn max_abs_diff(&self, other: &Matrix<f64>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix<f64>, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.cols + j]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(16) {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f, "{}", if self.cols > 16 { "..." } else { "" })?;
        }
        if self.rows > 16 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let mut m = Matrix::filled(2, 3, 0i32);
        m[(0, 0)] = 1;
        m[(1, 2)] = 7;
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.as_slice()[0], 0);
        assert_eq!(m.as_slice()[4], 10);
        assert_eq!(m.as_slice()[11], 23);
        assert_eq!(m.row(2), &[20, 21, 22, 23]);
    }

    #[test]
    fn from_rows_matches_from_fn() {
        let a = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let b = Matrix::from_fn(2, 2, |i, j| (2 * i + j + 1) as i32);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1, 2], vec![3]]);
    }

    #[test]
    fn padding_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as i32);
        let p = m.padded(-1);
        assert_eq!(p.n(), 8);
        assert_eq!(p[(2, 4)], 14);
        assert_eq!(p[(3, 0)], -1);
        assert_eq!(p[(0, 5)], -1);
        let back = p.shrunk(3, 5);
        assert_eq!(back, m);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_fn(2, 3, |i, j| (i, j));
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], (1, 2));
    }

    #[test]
    fn identity_and_approx() {
        let i4 = Matrix::identity(4);
        assert_eq!(i4[(2, 2)], 1.0);
        assert_eq!(i4[(2, 3)], 0.0);
        let mut j4 = i4.clone();
        j4[(0, 0)] = 1.0 + 1e-12;
        assert!(i4.approx_eq(&j4, 1e-9));
        assert!(!i4.approx_eq(&j4, 1e-15));
        assert!(i4.max_abs_diff(&j4) > 0.0);
    }

    #[test]
    fn iter_indexed_covers_all() {
        let m = Matrix::from_fn(3, 3, |i, j| i * 3 + j);
        let mut seen = vec![];
        for (i, j, &v) in m.iter_indexed() {
            assert_eq!(v, i * 3 + j);
            seen.push((i, j));
        }
        assert_eq!(seen.len(), 9);
        assert_eq!(seen[0], (0, 0));
        assert_eq!(seen[8], (2, 2));
    }

    #[test]
    fn copy_from_and_fill() {
        let src = Matrix::from_fn(2, 2, |i, j| (i + j) as u8);
        let mut dst = Matrix::filled(2, 2, 0u8);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.fill(9);
        assert_eq!(dst.as_slice(), &[9, 9, 9, 9]);
    }
}
