//! Bit-interleaving (Z-order / Morton) index arithmetic.
//!
//! The paper's Section 4.2 arranges base-case blocks in a *bit-interleaved
//! layout* to reduce TLB misses: block `(bi, bj)` is stored at linear block
//! index `interleave(bi, bj)`, which places blocks that are close in 2-D
//! close in memory at every scale — exactly mirroring the recursion tree of
//! I-GEP.

/// Spreads the low 32 bits of `x` so bit `k` moves to bit `2k`.
#[inline]
pub fn spread_bits(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread_bits`]: compacts every other bit (even positions).
#[inline]
pub fn compact_bits(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Morton code of `(row, col)`: row bits land in odd positions, column bits
/// in even positions, so the curve sweeps `(0,0), (0,1), (1,0), (1,1), ...`
/// (row-major within each 2x2, recursively).
#[inline]
pub fn interleave(row: u32, col: u32) -> u64 {
    (spread_bits(row) << 1) | spread_bits(col)
}

/// Inverse of [`interleave`]: Morton code back to `(row, col)`.
#[inline]
pub fn deinterleave(z: u64) -> (u32, u32) {
    (compact_bits(z >> 1), compact_bits(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_codes_follow_z_curve() {
        // 2x2: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3
        assert_eq!(interleave(0, 0), 0);
        assert_eq!(interleave(0, 1), 1);
        assert_eq!(interleave(1, 0), 2);
        assert_eq!(interleave(1, 1), 3);
        // next scale: (0,2)=4, (2,0)=8, (2,2)=12, (3,3)=15
        assert_eq!(interleave(0, 2), 4);
        assert_eq!(interleave(2, 0), 8);
        assert_eq!(interleave(2, 2), 12);
        assert_eq!(interleave(3, 3), 15);
    }

    #[test]
    fn codes_are_a_bijection_on_a_grid() {
        let mut seen = vec![false; 64 * 64];
        for r in 0..64u32 {
            for c in 0..64u32 {
                let z = interleave(r, c) as usize;
                assert!(z < 64 * 64);
                assert!(!seen[z], "collision at ({r},{c})");
                seen[z] = true;
                assert_eq!(deinterleave(z as u64), (r, c));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn spread_compact_roundtrip() {
        for x in [0u32, 1, 2, 3, 255, 256, 0xFFFF, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(compact_bits(spread_bits(x)), x);
        }
    }

    #[test]
    fn quadrant_locality() {
        // All codes of the top-left 4x4 quadrant of an 8x8 grid precede all
        // codes of the bottom-right quadrant.
        let tl_max = (0..4)
            .flat_map(|r| (0..4).map(move |c| interleave(r, c)))
            .max()
            .unwrap();
        let br_min = (4..8)
            .flat_map(|r| (4..8).map(move |c| interleave(r, c)))
            .min()
            .unwrap();
        assert!(tl_max < br_min);
    }
}
