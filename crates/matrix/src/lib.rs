//! # gep-matrix
//!
//! Dense matrix storage, views, and cache-friendly layouts used throughout
//! the GEP (Gaussian Elimination Paradigm) workspace.
//!
//! The crate provides:
//!
//! * [`Matrix`] — an owned, row-major dense matrix.
//! * [`MatView`] / [`MatViewMut`] — borrowed rectangular windows with an
//!   explicit row stride, including quadrant splitting for the recursive
//!   cache-oblivious algorithms.
//! * [`morton`] — bit-interleaving (Z-order) index arithmetic.
//! * [`TiledMatrix`] — the *bit-interleaved block layout* of the paper's
//!   Section 4.2: fixed-size square tiles stored contiguously in row-major
//!   order internally, with tiles arranged along the Z-order curve. This is
//!   the TLB-friendly layout the paper converts to and from (and charges the
//!   conversion cost to the measured running time, as we do in `gep-bench`).
//! * [`layout`] — address maps `(i, j) -> linear address` for the cache
//!   simulator, covering row-major, column-major and Morton-tiled layouts.
//!
//! All square-matrix routines in the workspace assume power-of-two sides at
//! the recursion level (the paper's `n = 2^q` convention); [`Matrix::padded`]
//! and [`next_pow2`] help embed arbitrary sizes.

pub mod dense;
pub mod layout;
pub mod morton;
pub mod tiled;
pub mod view;

pub use dense::Matrix;
pub use layout::{ColMajor, Layout, MortonTiled, RowMajor};
pub use tiled::TiledMatrix;
pub use view::{MatView, MatViewMut};

/// Smallest power of two `>= n` (and `>= 1`).
///
/// The recursive GEP algorithms assume `n = 2^q`; arbitrary problem sizes are
/// embedded into the next power of two (see [`Matrix::padded`]).
///
/// # Panics
/// Panics if the result would overflow `usize`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// True if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn is_pow2_basics() {
        assert!(!is_pow2(0));
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(!is_pow2(3));
        assert!(is_pow2(64));
        assert!(!is_pow2(65));
    }
}
