//! Borrowed rectangular windows into a dense matrix.
//!
//! The recursive GEP algorithms operate on *aligned subsquares* of the input
//! matrix. A view is a `(base, rows, cols, row_stride)` window: element
//! `(i, j)` lives at linear offset `i * row_stride + j` from the base.
//! Splitting a view into its four quadrants is the structural step of every
//! algorithm in this workspace (Figures 2, 3 and 6 of the paper).
//!
//! [`MatViewMut`] is pointer-based rather than slice-based: the four
//! quadrants of a strided window interleave within the backing allocation
//! (top-left and top-right share rows), so they cannot be represented as
//! disjoint `&mut [T]` sub-slices. Holding a raw base pointer plus a
//! lifetime lets us hand out simultaneously-live quadrant views whose
//! *element sets* are provably disjoint, without ever materialising
//! overlapping `&mut` references.

use std::marker::PhantomData;
use std::ops::Index;

/// Immutable strided view of a `rows x cols` window.
#[derive(Clone, Copy)]
pub struct MatView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a, T> MatView<'a, T> {
    /// Creates a view over `data` with the given shape and row stride.
    ///
    /// # Panics
    /// Panics if the window described by `(rows, cols, stride)` does not fit
    /// inside `data`.
    pub fn new(data: &'a [T], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(cols <= stride || rows <= 1, "cols must not exceed stride");
        if rows > 0 {
            assert!(
                (rows - 1) * stride + cols <= data.len(),
                "view out of bounds"
            );
        }
        Self {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride of the underlying storage.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sub-window at `(top, left)` of shape `rows x cols`.
    pub fn window(&self, top: usize, left: usize, rows: usize, cols: usize) -> MatView<'a, T> {
        assert!(top + rows <= self.rows && left + cols <= self.cols);
        MatView::new(
            &self.data[top * self.stride + left..],
            rows,
            cols,
            self.stride,
        )
    }

    /// Splits a square, even-sided view into its four quadrants
    /// `[top-left, top-right, bottom-left, bottom-right]`.
    pub fn quadrants(&self) -> [MatView<'a, T>; 4] {
        assert_eq!(self.rows, self.cols, "quadrants need a square view");
        assert!(self.rows % 2 == 0, "quadrants need an even side");
        let h = self.rows / 2;
        [
            self.window(0, 0, h, h),
            self.window(0, h, h, h),
            self.window(h, 0, h, h),
            self.window(h, h, h, h),
        ]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.stride..i * self.stride + self.cols]
    }
}

impl<T: Copy> MatView<'_, T> {
    /// Element at `(i, j)` (copy).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Materialises the window as an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

impl<T> Index<(usize, usize)> for MatView<'_, T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.stride + j]
    }
}

/// Mutable strided view of a `rows x cols` window.
///
/// Internally a raw base pointer plus shape; see the module docs for why.
/// The view logically holds a unique borrow of its *element set* (not of the
/// whole backing allocation), which is what allows
/// [`MatViewMut::quadrants_mut`] to return four simultaneously usable views.
pub struct MatViewMut<'a, T> {
    base: *mut T,
    rows: usize,
    cols: usize,
    stride: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a MatViewMut owns unique access to its element set, exactly like
// `&mut [T]`; sending it to another thread is as safe as sending `&mut [T]`.
unsafe impl<T: Send> Send for MatViewMut<'_, T> {}

impl<'a, T> MatViewMut<'a, T> {
    /// Creates a mutable view over `data` with the given shape and stride.
    ///
    /// # Panics
    /// Panics if the window does not fit inside `data`.
    pub fn new(data: &'a mut [T], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(cols <= stride || rows <= 1, "cols must not exceed stride");
        if rows > 0 {
            assert!(
                (rows - 1) * stride + cols <= data.len(),
                "view out of bounds"
            );
        }
        Self {
            base: data.as_mut_ptr(),
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Creates a view from a raw base pointer.
    ///
    /// # Safety
    /// `base` must point to an allocation in which every element
    /// `(i, j)` with `i < rows`, `j < cols` at offset `i * stride + j` is
    /// valid, uniquely accessible through this view for the lifetime `'a`,
    /// and not accessed through any other reference while the view lives.
    pub unsafe fn from_raw(base: *mut T, rows: usize, cols: usize, stride: usize) -> Self {
        Self {
            base,
            rows,
            cols,
            stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride of the underlying storage.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Raw base pointer of the window.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        self.base
    }

    #[inline(always)]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        i * self.stride + j
    }

    /// Reference to element `(i, j)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> &T {
        // SAFETY: offset() checks bounds in debug; the constructor
        // guarantees in-window offsets are valid, and `&self` allows shared
        // reads of elements this view uniquely borrows.
        unsafe { &*self.base.add(self.offset(i, j)) }
    }

    /// Mutable reference to element `(i, j)`.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        let off = self.offset(i, j);
        // SAFETY: as above, with `&mut self` giving unique access.
        unsafe { &mut *self.base.add(off) }
    }

    /// Immutable snapshot view of the same window.
    pub fn as_view(&self) -> MatView<'_, T> {
        // SAFETY: the element set of this view is valid for reads; the
        // returned MatView borrows `self`, preventing mutation while alive.
        // The slice covers the full strided extent of the window, all of
        // which lies inside the original allocation (constructor contract).
        let len = if self.rows == 0 {
            0
        } else {
            (self.rows - 1) * self.stride + self.cols
        };
        let slice = unsafe { std::slice::from_raw_parts(self.base, len) };
        MatView::new(slice, self.rows, self.cols, self.stride)
    }

    /// Reborrows a mutable sub-window at `(top, left)` of shape
    /// `rows x cols`.
    pub fn window_mut(
        &mut self,
        top: usize,
        left: usize,
        rows: usize,
        cols: usize,
    ) -> MatViewMut<'_, T> {
        assert!(top + rows <= self.rows && left + cols <= self.cols);
        MatViewMut {
            // SAFETY: in-bounds offset within the window.
            base: unsafe { self.base.add(top * self.stride + left) },
            rows,
            cols,
            stride: self.stride,
            _marker: PhantomData,
        }
    }

    /// Splits a square, even-sided view into four *disjoint* mutable
    /// quadrants `[top-left, top-right, bottom-left, bottom-right]`,
    /// consuming the view so the quadrants can outlive `&mut self` reborrow
    /// scopes (they inherit lifetime `'a`).
    pub fn split_quadrants(self) -> [MatViewMut<'a, T>; 4] {
        assert_eq!(self.rows, self.cols, "quadrants need a square view");
        assert!(self.rows % 2 == 0, "quadrants need an even side");
        let h = self.rows / 2;
        let q = |top: usize, left: usize| MatViewMut {
            // SAFETY: offsets stay inside the window; the four quadrants'
            // element sets are pairwise disjoint (disjoint row ranges or
            // disjoint column ranges), so unique access is preserved.
            base: unsafe { self.base.add(top * self.stride + left) },
            rows: h,
            cols: h,
            stride: self.stride,
            _marker: PhantomData,
        };
        [q(0, 0), q(0, h), q(h, 0), q(h, h)]
    }

    /// Splits into four disjoint mutable quadrants borrowed from `self`.
    pub fn quadrants_mut(&mut self) -> [MatViewMut<'_, T>; 4] {
        assert_eq!(self.rows, self.cols, "quadrants need a square view");
        assert!(self.rows % 2 == 0, "quadrants need an even side");
        let h = self.rows / 2;
        let q = |top: usize, left: usize| MatViewMut {
            // SAFETY: see `split_quadrants`.
            base: unsafe { self.base.add(top * self.stride + left) },
            rows: h,
            cols: h,
            stride: self.stride,
            _marker: PhantomData,
        };
        [q(0, 0), q(0, h), q(h, 0), q(h, h)]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows);
        // SAFETY: row i occupies `cols` contiguous valid elements owned by
        // this view; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(i * self.stride), self.cols) }
    }
}

impl<T: Copy> MatViewMut<'_, T> {
    /// Element at `(i, j)` (copy).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        *self.at(i, j)
    }

    /// Sets element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        *self.at_mut(i, j) = v;
    }

    /// Fills the window with `v`.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Materialises the window as an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn view_windows() {
        let m = Matrix::from_fn(4, 4, |i, j| i * 4 + j);
        let v = m.view();
        let w = v.window(1, 2, 2, 2);
        assert_eq!(w[(0, 0)], 6);
        assert_eq!(w[(1, 1)], 11);
        assert_eq!(w.rows(), 2);
        assert_eq!(w.to_matrix().as_slice(), &[6, 7, 10, 11]);
    }

    #[test]
    fn quadrants_immutable() {
        let m = Matrix::from_fn(4, 4, |i, j| (i, j));
        let [tl, tr, bl, br] = m.view().quadrants();
        assert_eq!(tl[(0, 0)], (0, 0));
        assert_eq!(tr[(0, 0)], (0, 2));
        assert_eq!(bl[(0, 0)], (2, 0));
        assert_eq!(br[(1, 1)], (3, 3));
    }

    #[test]
    fn quadrants_mut_disjoint_writes() {
        let mut m = Matrix::square(4, 0u32);
        {
            let mut v = m.view_mut();
            let [mut tl, mut tr, mut bl, mut br] = v.quadrants_mut();
            tl.fill(1);
            tr.fill(2);
            bl.fill(3);
            br.fill(4);
        }
        let expect = Matrix::from_fn(4, 4, |i, j| match (i < 2, j < 2) {
            (true, true) => 1,
            (true, false) => 2,
            (false, true) => 3,
            (false, false) => 4,
        });
        assert_eq!(m, expect);
    }

    #[test]
    fn split_quadrants_moves_lifetime() {
        let mut m = Matrix::square(4, 0u32);
        let [mut tl, _, _, mut br] = m.view_mut().split_quadrants();
        tl.set(0, 0, 1);
        br.set(1, 1, 4);
        assert_eq!(m[(0, 0)], 1);
        assert_eq!(m[(3, 3)], 4);
    }

    #[test]
    fn nested_windows_share_stride() {
        let mut m = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as i32);
        let mut v = m.view_mut();
        let mut w = v.window_mut(2, 2, 4, 4);
        let mut inner = w.window_mut(1, 1, 2, 2);
        inner.set(0, 0, -1);
        assert_eq!(m[(3, 3)], -1);
    }

    #[test]
    fn row_access() {
        let mut m = Matrix::from_fn(3, 3, |i, j| i * 3 + j);
        let mut v = m.view_mut();
        v.row_mut(1)[2] = 99;
        assert_eq!(m.view().row(1), &[3, 4, 99]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_bounds_checked() {
        let data = vec![0u8; 7];
        let _ = crate::MatView::new(&data, 2, 4, 4);
    }

    #[test]
    fn view_mut_fill_respects_window() {
        let mut m = Matrix::square(4, 0i32);
        m.view_mut().window_mut(1, 1, 2, 2).fill(5);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(1, 1)], 5);
        assert_eq!(m[(2, 2)], 5);
        assert_eq!(m[(3, 3)], 0);
        assert_eq!(m[(1, 3)], 0);
    }

    #[test]
    fn as_view_snapshots() {
        let mut m = Matrix::from_fn(2, 2, |i, j| i + j);
        let vm = m.view_mut();
        let snap = vm.as_view();
        assert_eq!(snap[(1, 1)], 2);
    }

    #[test]
    fn quadrant_views_send_across_threads() {
        let mut m = Matrix::square(64, 0u64);
        let [mut tl, mut tr, mut bl, mut br] = m.view_mut().split_quadrants();
        std::thread::scope(|s| {
            s.spawn(move || tl.fill(1));
            s.spawn(move || tr.fill(2));
            s.spawn(move || bl.fill(3));
            s.spawn(move || br.fill(4));
        });
        assert_eq!(m[(0, 0)], 1);
        assert_eq!(m[(0, 63)], 2);
        assert_eq!(m[(63, 0)], 3);
        assert_eq!(m[(63, 63)], 4);
    }
}
