//! The bit-interleaved block layout of the paper's Section 4.2.
//!
//! A [`TiledMatrix`] stores an `n x n` matrix (`n` a power of two) as
//! `(n/b)^2` square tiles of side `b` (the *base-size*). Each tile is
//! stored contiguously in row-major order — the "prefetcher-friendly"
//! arrangement the paper credits for its speedup over earlier studies —
//! while the tiles themselves are ordered along the Z-order (Morton) curve,
//! which keeps every aligned subsquare of tiles contiguous in memory and
//! reduces TLB misses.
//!
//! The paper includes the cost of converting to and from this layout in its
//! reported times; `gep-bench` does the same.

use crate::morton::{deinterleave, interleave};
use crate::{is_pow2, Matrix};

/// An `n x n` matrix in Morton-ordered tiles of side `tile`.
#[derive(Clone, PartialEq, Debug)]
pub struct TiledMatrix<T> {
    n: usize,
    tile: usize,
    data: Vec<T>,
}

impl<T: Copy> TiledMatrix<T> {
    /// Creates a tiled matrix filled with `fill`.
    ///
    /// # Panics
    /// Panics unless `n` and `tile` are powers of two with `tile <= n`.
    pub fn filled(n: usize, tile: usize, fill: T) -> Self {
        assert!(
            is_pow2(n) && is_pow2(tile),
            "n and tile must be powers of 2"
        );
        assert!(tile <= n, "tile must not exceed n");
        Self {
            n,
            tile,
            data: vec![fill; n * n],
        }
    }

    /// Converts a row-major [`Matrix`] into the tiled layout.
    ///
    /// # Panics
    /// Panics unless the matrix is square with power-of-two side `>= tile`.
    pub fn from_matrix(m: &Matrix<T>, tile: usize) -> Self {
        let n = m.n();
        assert!(is_pow2(n) && is_pow2(tile) && tile <= n);
        let mut out = Vec::with_capacity(n * n);
        let tiles = n / tile;
        for z in 0..(tiles * tiles) as u64 {
            let (bi, bj) = deinterleave(z);
            let (r0, c0) = (bi as usize * tile, bj as usize * tile);
            for r in 0..tile {
                out.extend_from_slice(&m.row(r0 + r)[c0..c0 + tile]);
            }
        }
        Self { n, tile, data: out }
    }

    /// Converts back to a row-major [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut m = Matrix::square(self.n, self.data[0]);
        let tiles = self.n / self.tile;
        for z in 0..(tiles * tiles) as u64 {
            let (bi, bj) = deinterleave(z);
            let (r0, c0) = (bi as usize * self.tile, bj as usize * self.tile);
            let block = &self.data[z as usize * self.tile * self.tile..];
            for r in 0..self.tile {
                m.row_mut(r0 + r)[c0..c0 + self.tile]
                    .copy_from_slice(&block[r * self.tile..(r + 1) * self.tile]);
            }
        }
        m
    }

    /// Linear offset of element `(i, j)` in the tiled storage.
    #[inline]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.n);
        let (bi, bj) = (i / self.tile, j / self.tile);
        let z = interleave(bi as u32, bj as u32) as usize;
        z * self.tile * self.tile + (i % self.tile) * self.tile + (j % self.tile)
    }

    /// Element at `(i, j)` (copy).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.offset(i, j)]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let off = self.offset(i, j);
        self.data[off] = v;
    }

    /// The tile containing block coordinates `(bi, bj)` as a contiguous
    /// row-major slice of `tile * tile` elements.
    pub fn tile_slice(&self, bi: usize, bj: usize) -> &[T] {
        let z = interleave(bi as u32, bj as u32) as usize;
        let t2 = self.tile * self.tile;
        &self.data[z * t2..(z + 1) * t2]
    }

    /// Mutable access to the tile at block coordinates `(bi, bj)`.
    pub fn tile_slice_mut(&mut self, bi: usize, bj: usize) -> &mut [T] {
        let z = interleave(bi as u32, bj as u32) as usize;
        let t2 = self.tile * self.tile;
        &mut self.data[z * t2..(z + 1) * t2]
    }
}

impl<T> TiledMatrix<T> {
    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile side (the base-size of Section 4.2).
    #[inline]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Raw tiled storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        let m = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as u32);
        for tile in [1usize, 2, 4, 8] {
            let t = TiledMatrix::from_matrix(&m, tile);
            assert_eq!(t.to_matrix(), m, "tile={tile}");
        }
    }

    #[test]
    fn get_set_agree_with_matrix() {
        let m = Matrix::from_fn(16, 16, |i, j| (i * 100 + j) as i64);
        let mut t = TiledMatrix::from_matrix(&m, 4);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(t.get(i, j), m[(i, j)]);
            }
        }
        t.set(3, 9, -5);
        assert_eq!(t.get(3, 9), -5);
        assert_eq!(t.to_matrix()[(3, 9)], -5);
    }

    #[test]
    fn tiles_are_contiguous_row_major() {
        let m = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as u16);
        let t = TiledMatrix::from_matrix(&m, 4);
        // Tile (0,0) should be rows 0..4 x cols 0..4 in row-major order.
        let tl = t.tile_slice(0, 0);
        assert_eq!(tl[0], 0);
        assert_eq!(tl[3], 3);
        assert_eq!(tl[4], 8);
        assert_eq!(tl[15], 27);
        // Tile (1,1) is the bottom-right 4x4.
        let br = t.tile_slice(1, 1);
        assert_eq!(br[0], m[(4, 4)]);
        assert_eq!(br[15], m[(7, 7)]);
    }

    #[test]
    fn morton_tile_order() {
        // With 4 tiles of a 2x2 tile grid, storage order is
        // (0,0), (0,1), (1,0), (1,1).
        let m = Matrix::from_fn(4, 4, |i, j| (i / 2) * 2 + j / 2);
        let t = TiledMatrix::from_matrix(&m, 2);
        let s = t.as_slice();
        assert!(s[0..4].iter().all(|&v| v == 0));
        assert!(s[4..8].iter().all(|&v| v == 1));
        assert!(s[8..12].iter().all(|&v| v == 2));
        assert!(s[12..16].iter().all(|&v| v == 3));
    }

    #[test]
    fn offsets_are_a_bijection() {
        let t = TiledMatrix::filled(16, 4, 0u8);
        let mut seen = vec![false; 256];
        for i in 0..16 {
            for j in 0..16 {
                let off = t.offset(i, j);
                assert!(!seen[off]);
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic]
    fn rejects_non_pow2() {
        let _ = TiledMatrix::filled(12, 4, 0u8);
    }

    #[test]
    fn tile_slice_mut_writes_through() {
        let m = Matrix::from_fn(4, 4, |_, _| 0i32);
        let mut t = TiledMatrix::from_matrix(&m, 2);
        t.tile_slice_mut(1, 0).fill(7);
        let back = t.to_matrix();
        assert_eq!(back[(2, 0)], 7);
        assert_eq!(back[(3, 1)], 7);
        assert_eq!(back[(0, 0)], 0);
        assert_eq!(back[(2, 2)], 0);
    }
}
