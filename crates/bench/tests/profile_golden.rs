//! Golden cross-checks for `repro profile` at small sizes.
//!
//! Lives in an integration test (own process) because profiling installs
//! the process-global `gep_obs` recorder; the library unit tests already
//! install/take it concurrently and would race with this.

use gep_bench::experiments::profile::profile_report;
use gep_parallel::span::{abcd_level_counts, base_cases_full};

#[test]
fn profile_matches_section3_recurrences_at_small_sizes() {
    for (n, base) in [(4usize, 1usize), (8, 2), (16, 2)] {
        let p = profile_report(n, base, gep_hwc::availability());
        assert!(
            p.cross_check_ok,
            "n={n} base={base}: depth x kind counts must match the §3 recurrences exactly"
        );

        let predicted = abcd_level_counts(n, base);
        assert_eq!(
            p.rows.len(),
            predicted.len() * 4,
            "n={n}: one row per depth x kind"
        );
        for r in &p.rows {
            assert_eq!(
                r.calls, r.predicted,
                "n={n} depth={} kind={}: observed calls diverge from recurrence",
                r.depth, r.kind
            );
            assert_eq!(r.side, n >> r.depth, "n={n}: side halves per depth");
        }

        // Leaf depth carries every base case, split by shape.
        let leaves: u64 = p.shapes.iter().map(|s| s.leaves).sum();
        assert_eq!(leaves, base_cases_full(n, base), "n={n}: replayed leaves");
        let leaf_flops: u64 = p.shapes.iter().map(|s| s.flops).sum();
        assert_eq!(
            leaf_flops,
            base_cases_full(n, base) * (base as u64).pow(3) * 2,
            "n={n}: leaf flops"
        );

        // The collapsed-stack file conserves time: folded self-times sum
        // to the same total as the depth x kind attribution.
        let folded: u64 = p
            .flame
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let attributed: u64 = p.rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(folded, attributed, "n={n}: flame conserves self time");
        assert!(p.flame.starts_with('A'), "root frame is the outer A call");
    }
}
