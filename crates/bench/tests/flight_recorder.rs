//! Kill–resume acceptance test for the flight recorder: the JSONL file
//! written across an injected crash and the resumed solve replays a
//! monotone progress curve that ends at `igep_step_count(n)`.
//!
//! Sampling is driven explicitly (`sample_now` at deterministic points,
//! with an effectively-infinite period) so the curve is reproducible in
//! CI; the periodic path is covered by the `gep-obs` unit tests.
//!
//! Lives in an integration test (own process) because it installs the
//! process-global `gep_obs` recorder.

use gep_apps::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::igep_step_count;
use gep_extmem::{
    fault_clock, run_checkpointed, run_to_crash, CkptConfig, DiskProfile, FaultPlan, MemStore,
};
use gep_obs::{read_flight_file, Json, Sampler, SamplerConfig};
use std::time::Duration;

#[test]
fn killed_and_resumed_solve_leaves_a_monotone_progress_curve() {
    gep_extmem::silence_injected_crash_reports();
    let spec = FwSpec::<i64>::new();
    let (n, base) = (16usize, 2usize);
    let input = random_dist_matrix(n, 90210);
    let cfg = CkptConfig {
        m_bytes: 2048,
        b_bytes: 256,
        base,
        snapshot_every: 8,
        profile: DiskProfile::fujitsu_map3735nc(),
    };
    let total = igep_step_count(&spec, n, base);

    // Dry run to learn the stable-write count, so the kill lands mid-run.
    let clock = fault_clock(FaultPlan::default());
    let mut dry = MemStore::new(Some(clock.clone()));
    run_checkpointed(&spec, &input, &cfg, &mut dry, Some(clock.clone()));
    let writes = clock.borrow().writes();

    let path = std::env::temp_dir().join(format!(
        "gep-flight-killresume-{}.jsonl",
        std::process::id()
    ));
    gep_obs::install(gep_obs::Recorder::counters_only());
    let sampler = Sampler::start(SamplerConfig {
        path: path.clone(),
        period: Duration::from_secs(3600), // explicit samples only
        ring_capacity: 16,
    })
    .expect("start sampler");

    // Kill at 60% of the stable writes; the progress gauges keep the
    // last state published before the injected crash.
    let clock = fault_clock(FaultPlan {
        crash_at_write: Some((writes * 3 / 5).max(1)),
        torn_write: true,
        ..Default::default()
    });
    let mut store = MemStore::new(Some(clock.clone()));
    run_to_crash(std::panic::AssertUnwindSafe(|| {
        run_checkpointed(&spec, &input, &cfg, &mut store, Some(clock.clone()))
    }))
    .expect_err("the injected crash point is below the run's write count");
    assert!(sampler.sample_now(), "post-crash sample");

    // Resume from the durable checkpoint to completion.
    let (_, stats) = run_checkpointed(&spec, &input, &cfg, &mut store, Some(clock));
    assert_eq!(stats.total_steps, total);
    assert!(sampler.sample_now(), "post-resume sample");
    sampler.stop(); // writes one final flush sample
    let _ = gep_obs::take();

    let log = read_flight_file(&path).expect("flight file parses");
    assert!(!log.torn_tail, "every line was completed");
    assert!(log.samples.len() >= 3, "crash, resume and flush samples");
    let cursors: Vec<f64> = (0..log.samples.len())
        .map(|i| log.gauge(i, "progress.cursor").expect("cursor gauge"))
        .collect();
    assert!(
        cursors.windows(2).all(|w| w[0] <= w[1]),
        "progress curve is monotone: {cursors:?}"
    );
    let at_crash = cursors[0];
    assert!(
        at_crash > 0.0 && at_crash < total as f64,
        "the kill landed mid-run (cursor {at_crash} of {total})"
    );
    let last = log.samples.len() - 1;
    assert_eq!(cursors[last], total as f64, "curve ends at igep_step_count");
    assert_eq!(log.gauge(last, "progress.pct"), Some(100.0));
    assert_eq!(log.gauge(last, "progress.ckpt_lag_steps"), Some(0.0));
    assert_eq!(
        log.samples[last]
            .get("gauges")
            .and_then(|g| g.get("progress.total_steps"))
            .and_then(Json::as_gauge),
        Some(total as f64)
    );
    let _ = std::fs::remove_file(path);
}
