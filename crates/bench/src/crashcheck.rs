//! The crash axis of the differential harness.
//!
//! One trial kills a checkpointed out-of-core solve at a seed-fuzzed
//! point — crash at the Nth write (optionally tearing the final stable
//! append), silent checkpoint corruption, or transient read faults —
//! resumes it from the surviving checkpoint, and compares the result
//! **bit for bit** against an uninterrupted run of the same instance
//! (and both against the in-core engine). Determinism makes this strict:
//! the resumable schedule re-executes exactly the remaining leaf steps,
//! so any divergence is a real recovery bug, not noise.
//!
//! Trials alternate Floyd–Warshall over `i64` and Gaussian elimination
//! over `f64` (the two [`gep_extmem::ElemBytes`] element types), so both
//! the exact and the floating-point paths cross the checkpoint format.
//!
//! Seeds derive and replay exactly like the other diffcheck axes: trial
//! `t` uses `mix(master + CRASH_AXIS_OFFSET + t)`; a failure prints the
//! seed and `diffcheck crash --seed <u64>` reruns that instance alone.

use gep::apps::floyd_warshall::Weight;
use gep::apps::{FwSpec, GaussianSpec};
use gep::core::GepSpec;
use gep::matrix::Matrix;
use gep_extmem::{
    fault_clock, run_checkpointed, run_to_crash, CkptConfig, CkptStats, CkptStore, DiskProfile,
    ElemBytes, FaultPlan, MemStore,
};

/// xorshift64; 0 is a fixed point, so seeds are clamped to ≥ 1.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, m: u64) -> u64 {
        self.next() % m
    }
}

/// Bitwise matrix equality through the checkpoint serialisation, so
/// `f64` compares by bits (NaN payloads and signed zeros included) —
/// "resumes to the same answer" means the same answer, not an
/// approximation of it.
pub fn bits_eq<T: ElemBytes>(a: &Matrix<T>, b: &Matrix<T>) -> bool {
    if a.n() != b.n() {
        return false;
    }
    let (mut ba, mut bb) = (Vec::new(), Vec::new());
    for i in 0..a.n() {
        for j in 0..a.n() {
            a.get(i, j).write_le(&mut ba);
            b.get(i, j).write_le(&mut bb);
        }
    }
    ba == bb
}

/// The fault mode of one trial.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Kill at the `at`-th write; `torn` tears the final stable append.
    Crash { at: u64, torn: bool },
    /// Complete cleanly, flip one byte of one stored object, resume.
    Corrupt,
    /// Transient read faults with bounded retry; must self-heal.
    ReadFaults { every: u64 },
}

fn run_one<S, T>(
    spec: &S,
    input: &Matrix<T>,
    cfg: &CkptConfig,
    rng: &mut Rng,
    app: &str,
    seed: u64,
) -> Result<CkptStats, String>
where
    S: GepSpec<Elem = T>,
    T: ElemBytes,
{
    let fail = |detail: String| {
        Err(format!(
            "seed {seed:#018x} app {app} n {n} base {base} every {every}: {detail}",
            n = input.n(),
            base = cfg.base,
            every = cfg.snapshot_every,
        ))
    };

    // The uninterrupted differential baseline, which also measures the
    // run's write count (the crash-point domain).
    let clock = fault_clock(FaultPlan::default());
    let mut store = MemStore::new(Some(clock.clone()));
    let (want, _) = run_checkpointed(spec, input, cfg, &mut store, Some(clock.clone()));
    let writes = clock.borrow().writes();
    if writes < 4 {
        return fail(format!("implausible baseline write count {writes}"));
    }

    // Sanity: out-of-core checkpointed == in-core I-GEP, bit for bit.
    let mut oracle = input.clone();
    gep::core::igep(spec, &mut oracle, cfg.base);
    if !bits_eq(&want, &oracle) {
        return fail("uninterrupted checkpointed run diverges from in-core I-GEP".into());
    }

    let mode = match rng.below(4) {
        0 | 1 => Mode::Crash {
            at: 1 + rng.below(writes),
            torn: rng.below(2) == 1,
        },
        2 => Mode::Corrupt,
        _ => Mode::ReadFaults {
            every: 5 + rng.below(20),
        },
    };

    match mode {
        Mode::Crash { at, torn } => {
            let clock = fault_clock(FaultPlan {
                crash_at_write: Some(at),
                torn_write: torn,
                ..Default::default()
            });
            let mut store = MemStore::new(Some(clock.clone()));
            let first = run_to_crash(std::panic::AssertUnwindSafe(|| {
                run_checkpointed(spec, input, cfg, &mut store, Some(clock.clone()))
            }));
            match first {
                Ok((result, stats)) => {
                    // `at` ≤ the baseline's write count, so not crashing
                    // would mean the write sequence diverged.
                    if !bits_eq(&result, &want) {
                        return fail(format!(
                            "mode crash(at={at},torn={torn}): no crash fired and result differs"
                        ));
                    }
                    Ok(stats)
                }
                Err(crash) => {
                    if crash.at_write != at {
                        return fail(format!(
                            "mode crash(at={at},torn={torn}): crashed at write {} instead",
                            crash.at_write
                        ));
                    }
                    let (result, stats) =
                        run_checkpointed(spec, input, cfg, &mut store, Some(clock.clone()));
                    if !bits_eq(&result, &want) {
                        return fail(format!(
                            "mode crash(at={at},torn={torn}): resumed result differs from \
                             uninterrupted run (resumed from cursor {})",
                            stats.start_cursor
                        ));
                    }
                    Ok(stats)
                }
            }
        }
        Mode::Corrupt => {
            // `store` already holds the completed run. Corrupt one byte
            // of one object; the resume must detect it (checksums) and
            // fall back — a wrong answer is the only failure.
            let names = store.list();
            let name = names[rng.below(names.len() as u64) as usize].clone();
            let len = store.read(&name).expect("listed object").len();
            store.corrupt(&name, rng.below(len as u64) as usize);
            let (result, stats) = run_checkpointed(spec, input, cfg, &mut store, None);
            if !bits_eq(&result, &want) {
                return fail(format!(
                    "mode corrupt({name}): recovery produced a wrong result instead of \
                     falling back (fallbacks {})",
                    stats.recovery_fallbacks
                ));
            }
            Ok(stats)
        }
        Mode::ReadFaults { every } => {
            let clock = fault_clock(FaultPlan {
                read_fail_every: Some(every),
                max_retries: 2,
                ..Default::default()
            });
            let mut store = MemStore::new(Some(clock.clone()));
            let attempt = run_to_crash(std::panic::AssertUnwindSafe(|| {
                run_checkpointed(spec, input, cfg, &mut store, Some(clock.clone()))
            }));
            let (result, stats) = match attempt {
                Ok(pair) => pair,
                // Retry exhaustion escalates to a crash; resuming is
                // still required to converge.
                Err(_) => run_checkpointed(spec, input, cfg, &mut store, Some(clock.clone())),
            };
            if !bits_eq(&result, &want) {
                return fail(format!(
                    "mode read-faults(every={every}): result differs after {} retries",
                    clock.borrow().retries()
                ));
            }
            Ok(stats)
        }
    }
}

fn fw_input(n: usize, rng: &mut Rng) -> Matrix<i64> {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0
        } else if rng.below(5) == 0 {
            <i64 as Weight>::INFINITY
        } else {
            rng.below(30) as i64 + 1
        }
    })
}

fn ge_input(n: usize, rng: &mut Rng) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 2.0
        } else {
            rng.below(2001) as f64 / 1000.0 - 1.0
        }
    })
}

/// Runs the crash trial of `seed`. `Ok` carries the resumed/clean
/// attempt's checkpoint stats; `Err` carries a replayable description.
pub fn crash_trial(seed: u64) -> Result<CkptStats, String> {
    let mut rng = Rng::new(seed);
    let n = 8usize << rng.below(2); // 8 or 16
    let base = 1 + rng.below(2) as usize;
    let cfg = CkptConfig {
        m_bytes: 2048,
        b_bytes: 128 << rng.below(2), // 128 or 256
        base,
        snapshot_every: 3 + rng.below(28),
        profile: DiskProfile::fujitsu_map3735nc(),
    };
    if rng.below(2) == 0 {
        let input = fw_input(n, &mut rng);
        run_one(&FwSpec::<i64>::new(), &input, &cfg, &mut rng, "fw", seed)
    } else {
        let input = ge_input(n, &mut rng);
        run_one(&GaussianSpec, &input, &cfg, &mut rng, "ge", seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_crash_trials_pass() {
        gep_extmem::silence_injected_crash_reports();
        for trial in 0..12u64 {
            let seed = 0xC0FF_EE00u64.wrapping_add(trial.wrapping_mul(0x9E37_79B9));
            crash_trial(seed).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        gep_extmem::silence_injected_crash_reports();
        let a = crash_trial(42).expect("trial passes");
        let b = crash_trial(42).expect("trial passes");
        assert_eq!(a, b, "same seed must replay the same trial");
    }
}
