//! The reproduction driver: one subcommand per paper figure/table.
//!
//! ```text
//! cargo run -p gep-bench --release --bin repro -- all --quick
//! cargo run -p gep-bench --release --bin repro -- fig8
//! ```

use gep_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let known = [
        "counterexample",
        "table1",
        "table2",
        "fig7a",
        "fig7b",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "span",
        "space",
        "lemma31",
        "lemma32",
        "layout",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment '{what}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |name: &str| what == "all" || what == name;

    if run("counterexample") {
        theory::counterexample();
    }
    if run("table1") {
        theory::table1(if quick { 8 } else { 16 });
    }
    if run("table2") {
        theory::table2();
    }
    if run("fig7a") {
        let (n, b) = if quick { (128, 128) } else { (256, 256) };
        fig7::fig7a(n, b, &[1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0]);
    }
    if run("fig7b") {
        // Fixed M = 1/4 of the matrix; sweep B. Tall cache M >= B²
        // (elements) bounds the largest useful B.
        let n = if quick { 128 } else { 256 };
        let m = (n * n * 8 / 4) as u64;
        let bs: &[u64] = if quick {
            &[64, 128, 256, 512]
        } else {
            &[128, 256, 512, 1024, 2048]
        };
        fig7::fig7b(n, m, bs);
    }
    if run("fig8") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024, 2048]
        };
        fig8::fig8(sizes, if quick { 1 } else { 3 });
        // n = 512 i64 = 2 MB: the first power of two above the Xeon's
        // 512 KB L2 (smaller sizes fit and show only compulsory misses).
        fig8::fig8_misses(&[512]);
    }
    if run("fig9") {
        // 512 caps the sweep: the reduced-space variant's bookkeeping
        // makes larger sizes impractically slow (see EXPERIMENTS.md).
        let sizes: &[usize] = if quick {
            &[64, 128, 256]
        } else {
            &[128, 256, 512]
        };
        fig9::fig9_time(sizes, if quick { 1 } else { 3 });
        let miss_sizes: &[usize] = if quick { &[64, 128] } else { &[128, 256] };
        fig9::fig9_misses(miss_sizes);
    }
    if run("fig10") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024, 2048]
        };
        fig10::fig10(sizes, if quick { 1 } else { 3 });
    }
    if run("fig11") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024]
        };
        fig11::fig11_time(sizes, if quick { 1 } else { 3 });
        // f64 matrices: 3 x 512 KB at n = 256 exceed the Opteron's 1 MB
        // L2; n = 128 discriminates only in L1.
        let miss_sizes: &[usize] = if quick { &[128] } else { &[128, 256] };
        fig11::fig11_misses(miss_sizes);
    }
    if run("fig12") {
        let n = if quick { 256 } else { 1024 };
        let max_threads = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .max(8);
        let threads: Vec<usize> = (1..=max_threads.min(8)).collect();
        fig12::fig12(n, &threads, if quick { 1 } else { 2 });
    }
    if run("span") {
        theory::span_report(if quick { 1 << 10 } else { 1 << 13 });
    }
    if run("space") {
        let sizes: &[usize] = if quick { &[8, 16, 32] } else { &[8, 16, 32, 64] };
        theory::space_report(sizes);
    }
    if run("layout") {
        let sizes: &[usize] = if quick { &[256] } else { &[256, 512] };
        layout::layout_study(sizes, 64);
    }
    if run("lemma31") {
        let (n, m, b) = if quick {
            (64, 8 * 1024, 128)
        } else {
            (128, 16 * 1024, 128)
        };
        lemma::lemma31(n, m as u64, b);
    }
    if run("lemma32") {
        let (n, m1) = if quick { (32, 2 * 1024) } else { (64, 4 * 1024) };
        lemma::lemma32(n, m1, 64);
    }
}
