//! The reproduction driver: one subcommand per paper figure/table.
//!
//! ```text
//! cargo run -p gep-bench --release --bin repro -- all --quick
//! cargo run -p gep-bench --release --bin repro -- fig8
//! cargo run -p gep-bench --release --bin repro -- all --quick --json
//! cargo run -p gep-bench --release --bin repro -- validate
//! cargo run -p gep-bench --release --bin repro -- trace
//! cargo run -p gep-bench --release --bin repro -- tune --json
//! cargo run -p gep-bench --release --bin repro -- profile --json
//! cargo run -p gep-bench --release --bin repro -- resume --flight flight.jsonl
//! cargo run -p gep-bench --release --bin repro -- watch flight.jsonl
//! ```
//!
//! With `--json`, every experiment also writes a machine-readable
//! `BENCH_<experiment>.json` into `bench_json/` (schema:
//! `gep_obs::bench`); `validate` re-parses and schema-checks the emitted
//! files, which is what CI archives. `trace` records one multithreaded
//! I-GEP run and writes its A/B/C/D call tree as Chrome trace-event JSON
//! (open `bench_json/trace_igep.json` at <https://ui.perfetto.dev>).
//! `profile` attributes one recorded I-GEP solve per recursion depth and
//! box shape, cross-checked exactly against the §3 recurrences.
//! `--flight <path>` streams a flight-recorder JSONL file during any
//! experiment; `watch <path>` tails such a file (from another process)
//! and renders live progress/ETA plus any structured events
//! (`slow_request` lines from a serving run) as they appear.
//! `watch --addr HOST:PORT` instead polls a live `gep-serve` over TCP via
//! the `metrics` op — no flight file needed. `slo` runs the deterministic
//! serving-SLO gate and emits `BENCH_slo.json`. See docs/OBSERVABILITY.md.

use gep_bench::experiments::*;
use gep_bench::{compare, jsonout, trajectory};
use gep_obs::{BenchDoc, Json};

fn fnum(v: f64) -> Json {
    Json::Float(v)
}

fn inum(v: u64) -> Json {
    Json::Int(v as i64)
}

/// Appends one snapshot of `bench_dir` to the repo-root trajectory file.
/// Best-effort: a missing or metric-less bench dir is reported, not fatal.
fn append_trajectory(bench_dir: &std::path::Path, source: &str, quick: bool) {
    let entry =
        match trajectory::entry_from_dir(bench_dir, source, quick, &gep_bench::util::host_info()) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("trajectory: skipped ({e})");
                return;
            }
        };
    let path = std::path::Path::new(trajectory::TRAJECTORY_FILE);
    match trajectory::append(path, entry) {
        Ok(seq) => println!("appended entry {seq} to {}", path.display()),
        Err(e) => eprintln!("trajectory: cannot append to {}: {e}", path.display()),
    }
}

/// Formats the `progress.*` gauges of the last sample of a flight log as
/// one status line, or reports what is still missing.
fn progress_line(log: &gep_obs::FlightLog) -> (Option<i64>, String) {
    let Some(idx) = log.samples.len().checked_sub(1) else {
        return (None, "no samples yet".into());
    };
    let seq = log.samples[idx].get("seq").and_then(Json::as_i64);
    let g = |name: &str| log.gauge(idx, name);
    let (Some(cursor), Some(total), Some(pct)) = (
        g("progress.cursor"),
        g("progress.total_steps"),
        g("progress.pct"),
    ) else {
        // Not a checkpointed solve — maybe a live `gep-serve --flight`.
        if let Some(epoch) = g("serve.epoch") {
            let mut line = format!("serve: epoch {epoch:.0}");
            if let Some(depth) = g("serve.batch_depth") {
                line += &format!("  batch {depth:.0}");
            }
            if let Some(age) = g("serve.cache_age_s") {
                line += &format!("  cache age {}", gep_bench::util::fmt_secs(age));
            }
            if let Some(open) = g("serve.connections.open") {
                line += &format!("  conns {open:.0}");
            }
            if let Some(solve) = g("serve.resolve_s") {
                line += &format!("  last solve {solve:.3}s");
            }
            return (seq, line);
        }
        return (
            seq,
            "sampling, but no progress.* gauges yet (is a checkpointed solve running?)".into(),
        );
    };
    let mut line = format!("{pct:5.1}%  leaf {cursor:.0}/{total:.0}");
    if let (Some(rate), Some(eta)) = (g("progress.leaves_per_s"), g("progress.eta_s")) {
        line += &format!(
            "  {rate:.0} leaves/s  eta {}",
            gep_bench::util::fmt_secs(eta)
        );
    }
    if let Some(w) = g("progress.io_wait_frac") {
        line += &format!("  io-wait {:.0}%", w * 100.0);
    }
    if let (Some(steps), Some(bytes)) = (
        g("progress.ckpt_lag_steps"),
        g("progress.ckpt_lag_wal_bytes"),
    ) {
        line += &format!("  ckpt-lag {steps:.0} steps/{bytes:.0} B");
    }
    (seq, line)
}

/// One rendered line per structured flight event; `slow_request` gets its
/// trace/op/epoch/total called out, anything else prints its name.
fn event_line(ev: &Json) -> String {
    let name = ev.get("event").and_then(Json::as_str).unwrap_or("?");
    if name == "slow_request" {
        let s = |k: &str| ev.get(k).and_then(Json::as_str).unwrap_or("?");
        let i = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
        return format!(
            "slow_request trace={} op={} epoch={} total {:.2}ms",
            s("trace"),
            s("op"),
            i("epoch"),
            i("total_ns") as f64 / 1e6
        );
    }
    format!("event {name}")
}

/// `repro watch --addr HOST:PORT`: polls a live `gep-serve` over TCP via
/// the `metrics` op and renders one line per scrape — no flight file (or
/// filesystem access to the server) required.
fn watch_addr(addr: &str, once: bool) {
    use std::net::ToSocketAddrs;
    let Some(addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        eprintln!("watch: address '{addr}' does not resolve");
        std::process::exit(2);
    };
    loop {
        match gep_serve::loadgen::scrape_metrics(addr) {
            Ok(doc) => {
                let counter = |name: &str| {
                    doc.get("counters")
                        .and_then(|c| c.get(name))
                        .and_then(Json::as_u64)
                };
                let gauge = |name: &str| {
                    doc.get("gauges")
                        .and_then(|g| g.get(name))
                        .and_then(Json::as_gauge)
                };
                let mut line = String::from("serve:");
                if let Some(epoch) = gauge("serve.epoch") {
                    line += &format!(" epoch {epoch:.0}");
                }
                if let Some(served) = counter("serve.requests.served") {
                    line += &format!("  served {served}");
                }
                if let Some(p99) = gep_obs::exposition_hist_stat(&doc, "serve.req_ns.dist", "p99") {
                    line += &format!("  dist p99 {:.1}us", p99 as f64 / 1e3);
                }
                if let Some(depth) = gauge("serve.batch_depth") {
                    line += &format!("  batch {depth:.0}");
                }
                if let Some(open) = gauge("serve.connections.open") {
                    line += &format!("  conns {open:.0}");
                }
                if let Some(slow) = counter("serve.requests.slow") {
                    line += &format!("  slow {slow}");
                }
                println!("[scrape] {line}");
            }
            Err(e) => println!("waiting: {e}"),
        }
        if once {
            return;
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

/// `repro watch <file>`: tails a flight-recorder file written by another
/// process (`--flight`) and renders live progress, plus structured events
/// (slow-request lines) as they land. Stops at 100%, on `--once` after
/// the first read, or on ctrl-C.
fn watch(path: &std::path::Path, once: bool) {
    let mut last_seq = None;
    let mut last_event_seq = i64::MIN;
    loop {
        match gep_obs::read_flight_file(path) {
            Ok(log) => {
                for ev in &log.events {
                    let seq = ev.get("seq").and_then(Json::as_i64).unwrap_or(i64::MIN);
                    if seq > last_event_seq {
                        println!("[#{seq}] {}", event_line(ev));
                        last_event_seq = seq;
                    }
                }
                let (seq, line) = progress_line(&log);
                if seq != last_seq || seq.is_none() {
                    println!(
                        "[{}{}] {line}",
                        seq.map_or("-".into(), |s| format!("#{s}")),
                        if log.torn_tail { ", torn tail" } else { "" },
                    );
                    last_seq = seq;
                }
                let done = log
                    .samples
                    .len()
                    .checked_sub(1)
                    .and_then(|i| log.gauge(i, "progress.pct"))
                    .is_some_and(|p| p >= 100.0);
                if done {
                    println!("solve complete");
                    return;
                }
            }
            Err(e) => println!("waiting: {e}"),
        }
        if once {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

/// Builds the `BENCH_misses.json` document from a sweep outcome.
fn misses_doc(outcome: &misses::MissesOutcome, quick: bool) -> BenchDoc {
    let mut d = BenchDoc::new(
        "misses",
        "Section 4: measured LLC misses vs cachesim vs n^3/(B*sqrt(M))",
        quick,
    )
    .host(&gep_bench::util::host_info());
    for r in &outcome.rows {
        let mut fields = vec![
            ("app", Json::Str(r.app.into())),
            ("engine", Json::Str(r.engine.into())),
            ("backend", Json::Str(r.backend.into())),
            ("n", inum(r.n as u64)),
            ("seconds", fnum(r.seconds)),
            ("bound", fnum(r.bound)),
        ];
        // Absent measurements stay absent — no fake zeros in the schema.
        if let Some(s) = r.sim_llc {
            fields.push(("sim_llc_misses", inum(s)));
        }
        if let Some(ratio) = r.ratio_sim() {
            fields.push(("ratio_sim_over_bound", fnum(ratio)));
        }
        if let Some(hw) = &r.hw {
            for (event, value) in &hw.counts {
                fields.push(match *event {
                    "cycles" => ("hw_cycles", inum(*value)),
                    "instructions" => ("hw_instructions", inum(*value)),
                    "l1d_loads" => ("hw_l1d_loads", inum(*value)),
                    "l1d_misses" => ("hw_l1d_misses", inum(*value)),
                    "llc_loads" => ("hw_llc_loads", inum(*value)),
                    "llc_misses" => ("hw_llc_misses", inum(*value)),
                    "dtlb_misses" => ("hw_dtlb_misses", inum(*value)),
                    "task_clock_ns" => ("hw_task_clock_ns", inum(*value)),
                    "page_faults" => ("hw_page_faults", inum(*value)),
                    "context_switches" => ("hw_context_switches", inum(*value)),
                    _ => continue,
                });
            }
        }
        if let Some(ratio) = r.ratio_hw() {
            fields.push(("ratio_hw_over_bound", fnum(ratio)));
        }
        d.row(fields);
    }
    d.gauge("geometry.llc_bytes", outcome.geometry.llc_bytes as f64);
    d.gauge("geometry.line_bytes", outcome.geometry.line_bytes as f64);
    for (name, c) in &outcome.fits {
        d.gauge(name, *c);
    }
    d
}

fn ooc_doc(name: &str, title: &str, quick: bool, runs: &[fig7::OocRun]) -> BenchDoc {
    let mut d = BenchDoc::new(name, title, quick);
    for r in runs {
        d.row(vec![
            ("engine", Json::Str(r.engine.slug().into())),
            ("m_bytes", inum(r.m_bytes)),
            ("b_bytes", inum(r.b_bytes)),
            ("wait_s", fnum(r.wait_s)),
            ("transfers", inum(r.transfers)),
        ]);
    }
    d
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    // `--flight <path>` takes a value: exclude it from the positionals so
    // the path is not mistaken for the subcommand.
    let flight_idx = args.iter().position(|a| a == "--flight");
    let flight = flight_idx.and_then(|i| args.get(i + 1)).cloned();
    let positional: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && Some(*i) != flight_idx.map(|f| f + 1))
        .map(|(_, a)| a.as_str())
        .collect();
    let what = positional.first().copied().unwrap_or("all");

    let known = [
        "algebras",
        "counterexample",
        "table1",
        "table2",
        "fig7a",
        "fig7b",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "span",
        "space",
        "lemma31",
        "lemma32",
        "layout",
        "misses",
        "profile",
        "resume",
        "serve",
        "slo",
        "tune",
        "compare",
        "validate",
        "trace",
        "watch",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment '{what}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }

    if what == "validate" {
        match jsonout::validate_all(&jsonout::out_dir()) {
            Ok(count) => println!("{count} BENCH file(s) valid"),
            Err(e) => {
                eprintln!("validation failed: {e}");
                std::process::exit(1);
            }
        }
        // The repo-root trajectory is part of the bench output contract:
        // schema-check it whenever it exists. An entry-less trajectory is
        // a coverage regression — the file only exists because some run
        // was supposed to append to it.
        let traj = std::path::Path::new(trajectory::TRAJECTORY_FILE);
        if traj.exists() {
            let parsed = std::fs::read_to_string(traj)
                .map_err(|e| e.to_string())
                .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()));
            let entries = match parsed.and_then(|doc| {
                trajectory::validate(&doc).map(|()| {
                    doc.get("entries")
                        .and_then(Json::as_arr)
                        .map_or(0, <[_]>::len)
                })
            }) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("validation failed: {}: {e}", traj.display());
                    std::process::exit(1);
                }
            };
            if entries == 0 {
                eprintln!(
                    "validation failed: {}: no entries (coverage regression: \
                     nothing has appended a snapshot)",
                    traj.display()
                );
                std::process::exit(1);
            }
            println!("ok {} ({entries} entries)", traj.display());
        }
        return;
    }

    if what == "watch" {
        let once = args.iter().any(|a| a == "--once");
        if let Some(i) = args.iter().position(|a| a == "--addr") {
            let Some(addr) = args.get(i + 1) else {
                eprintln!("usage: repro watch --addr HOST:PORT [--once]");
                std::process::exit(2);
            };
            watch_addr(addr, once);
            return;
        }
        let Some(path) = positional.get(1) else {
            eprintln!("usage: repro watch <flight-file> [--once] | repro watch --addr HOST:PORT");
            std::process::exit(2);
        };
        watch(std::path::Path::new(path), once);
        return;
    }

    if what == "compare" {
        // repro compare <baseline-dir> [current-dir] [--deterministic]
        let deterministic = args.iter().any(|a| a == "--deterministic");
        let mut dirs = args.iter().filter(|a| !a.starts_with("--")).skip(1);
        let Some(baseline) = dirs.next() else {
            eprintln!("usage: repro compare <baseline-dir> [current-dir] [--deterministic]");
            std::process::exit(2);
        };
        let current = dirs.next().map(String::as_str).unwrap_or(jsonout::OUT_DIR);
        let report = match compare::compare_dirs(
            std::path::Path::new(baseline),
            std::path::Path::new(current),
            deterministic,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("compare failed: {e}");
                std::process::exit(2);
            }
        };
        compare::print_report(&report);
        append_trajectory(std::path::Path::new(current), "compare", quick);
        if report.has_regressions() {
            std::process::exit(1);
        }
        return;
    }

    if what == "trace" {
        // Base n/16 keeps the span count in the thousands (base 1 at this
        // size would record millions of per-call spans).
        let n = if quick { 128 } else { 512 };
        let base = n / 16;
        let spec = gep_apps::floyd_warshall::FwSpec::<i64>::new();
        let mut c = gep_bench::workloads::random_dist_matrix(n, 8);
        gep_obs::install(gep_obs::Recorder::new());
        gep_parallel::with_threads(4, || gep_parallel::igep_parallel(&spec, &mut c, base));
        let rec = gep_obs::take().expect("recorder was installed");
        print!("{}", gep_obs::summary(&rec));
        let dir = jsonout::out_dir();
        let path = dir.join("trace_igep.json");
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, gep_obs::chrome_trace_string(&rec)));
        match write {
            Ok(()) => println!(
                "wrote {} ({} spans; open at https://ui.perfetto.dev)",
                path.display(),
                rec.spans.len()
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        return;
    }

    // --flight <path>: stream periodic counter/gauge snapshots to a
    // crash-durable JSONL file while the experiments run (`repro watch`
    // tails it from another process). A recorder is installed up front so
    // `progress.*` gauges publish even for experiments that do not
    // install one themselves; experiments that install their own simply
    // replace it and keep being sampled.
    let _flight_sampler = flight.as_ref().and_then(|path| {
        gep_obs::install(gep_obs::Recorder::counters_only());
        match gep_obs::Sampler::start(gep_obs::SamplerConfig::new(path)) {
            Ok(s) => {
                println!("flight recorder streaming to {path}");
                Some(s)
            }
            Err(e) => {
                eprintln!("cannot start flight recorder at {path}: {e}");
                None
            }
        }
    });

    // Experiments below read the recorder with `gep_obs::take()`. With
    // `--flight` active that would leave no recorder installed, so a fast
    // run could end with a header-only flight file (no periodic tick
    // fired, and the sampler's final flush sample finds nothing to
    // snapshot). Putting the recorder back keeps the last published
    // progress gauges visible to the flush sample.
    let flight_active = _flight_sampler.is_some();
    let reinstall = |rec: gep_obs::Recorder| {
        if flight_active {
            gep_obs::install(rec);
        }
    };

    let run = |name: &str| what == "all" || what == name;
    let emit = |doc: &BenchDoc| {
        if json {
            jsonout::emit(doc);
        }
    };

    if what == "tune" {
        // Not part of `all`: the sweep writes tuning.json, which changes
        // how every later timing subcommand runs — keep that an explicit
        // choice.
        let outcome = tune::tune(quick);
        emit(&tune::tune_doc(&outcome, quick));
        return;
    }

    if run("counterexample") {
        let (g, f, h) = theory::counterexample();
        let mut d = BenchDoc::new(
            "counterexample",
            "Section 2.2.1: the 2x2 instance where I-GEP != GEP",
            quick,
        );
        for (engine, value) in [("G", g), ("F", f), ("H", h)] {
            d.row(vec![
                ("engine", Json::Str(engine.into())),
                ("c21", Json::Int(value)),
            ]);
        }
        emit(&d);
    }
    if run("table1") {
        let ok = theory::table1(if quick { 8 } else { 16 });
        let mut d = BenchDoc::new("table1", "Table 1: operand states read by G and F", quick);
        d.row(vec![("checks_passed", Json::Bool(ok))]);
        emit(&d);
    }
    if run("table2") {
        theory::table2();
        let mut d = BenchDoc::new("table2", "Table 2: machine inventory", quick)
            .host(&gep_bench::util::host_info());
        for m in gep_cachesim::table2_machines() {
            d.row(vec![
                ("model", Json::Str(m.name.into())),
                ("processors", inum(m.processors as u64)),
                ("ghz", fnum(m.ghz)),
                ("peak_gflops", fnum(m.peak_gflops)),
                ("l1_bytes", inum(m.l1.0)),
                ("l2_bytes", inum(m.l2.0)),
                ("ram_bytes", inum(m.ram)),
            ]);
        }
        emit(&d);
    }
    if run("fig7a") {
        let (n, b) = if quick { (128, 128) } else { (256, 256) };
        if json {
            gep_obs::install(gep_obs::Recorder::counters_only());
        }
        let runs = fig7::fig7a(n, b, &[1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0]);
        let mut d = ooc_doc(
            "fig7a",
            "Figure 7(a): out-of-core FW, I/O wait vs cache size M",
            quick,
            &runs,
        );
        if let Some(rec) = gep_obs::take() {
            for (k, v) in &rec.counters {
                d.counter(k, *v);
            }
            reinstall(rec);
        }
        emit(&d);
    }
    if run("fig7b") {
        // Fixed M = 1/4 of the matrix; sweep B. Tall cache M >= B²
        // (elements) bounds the largest useful B.
        let n = if quick { 128 } else { 256 };
        let m = (n * n * 8 / 4) as u64;
        let bs: &[u64] = if quick {
            &[64, 128, 256, 512]
        } else {
            &[128, 256, 512, 1024, 2048]
        };
        if json {
            gep_obs::install(gep_obs::Recorder::counters_only());
        }
        let runs = fig7::fig7b(n, m, bs);
        let mut d = ooc_doc(
            "fig7b",
            "Figure 7(b): out-of-core FW, I/O wait vs M/B",
            quick,
            &runs,
        );
        if let Some(rec) = gep_obs::take() {
            for (k, v) in &rec.counters {
                d.counter(k, *v);
            }
            reinstall(rec);
        }
        emit(&d);
    }
    if run("fig8") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024, 2048]
        };
        let rows = fig8::fig8(sizes, if quick { 1 } else { 3 });
        let mut d = BenchDoc::new(
            "fig8",
            "Figure 8: in-core Floyd-Warshall, GEP vs I-GEP",
            quick,
        )
        .host(&gep_bench::util::host_info());
        for r in &rows {
            d.row(vec![
                ("n", inum(r.n as u64)),
                ("gep_s", fnum(r.gep_s)),
                ("igep_s", fnum(r.igep_s)),
                ("speedup", fnum(r.speedup())),
            ]);
        }
        emit(&d);
        // n = 512 i64 = 2 MB: the first power of two above the Xeon's
        // 512 KB L2 (smaller sizes fit and show only compulsory misses).
        let misses = fig8::fig8_misses(&[512]);
        let mut d = BenchDoc::new(
            "fig8_misses",
            "Figure 8 (cache view): L2 misses on the simulated Intel Xeon",
            quick,
        );
        for (n, gep_l2, igep_l2) in misses {
            d.row(vec![
                ("n", inum(n as u64)),
                ("gep_l2_misses", inum(gep_l2)),
                ("igep_l2_misses", inum(igep_l2)),
            ]);
        }
        emit(&d);
    }
    if run("fig9") {
        // 512 caps the sweep: the reduced-space variant's bookkeeping
        // makes larger sizes impractically slow (see EXPERIMENTS.md).
        let sizes: &[usize] = if quick {
            &[64, 128, 256]
        } else {
            &[128, 256, 512]
        };
        let rows = fig9::fig9_time(sizes, if quick { 1 } else { 3 });
        let mut d = BenchDoc::new("fig9", "Figure 9 (time): I-GEP vs C-GEP variants", quick)
            .host(&gep_bench::util::host_info());
        for r in &rows {
            d.row(vec![
                ("n", inum(r.n as u64)),
                ("igep_s", fnum(r.igep_s)),
                ("cgep4_s", fnum(r.cgep4_s)),
                ("cgepr_s", fnum(r.cgepr_s)),
            ]);
        }
        emit(&d);
        let miss_sizes: &[usize] = if quick { &[64, 128] } else { &[128, 256] };
        let misses = fig9::fig9_misses(miss_sizes);
        let mut d = BenchDoc::new(
            "fig9_misses",
            "Figure 9 (L2 misses): simulated Intel Xeon hierarchy",
            quick,
        );
        for (n, igep_l2, cgep_l2) in misses {
            d.row(vec![
                ("n", inum(n as u64)),
                ("igep_l2_misses", inum(igep_l2)),
                ("cgep4_l2_misses", inum(cgep_l2)),
            ]);
        }
        emit(&d);
    }
    if run("fig10") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024, 2048]
        };
        let rows = fig10::fig10(sizes, if quick { 1 } else { 3 });
        let mut d = BenchDoc::new(
            "fig10",
            "Figure 10: Gaussian elimination, GEP vs I-GEP vs blocked baseline",
            quick,
        )
        .host(&gep_bench::util::host_info());
        for r in &rows {
            d.row(vec![
                ("n", inum(r.n as u64)),
                ("gep_s", fnum(r.gep_s)),
                ("igep_s", fnum(r.igep_s)),
                ("blocked_s", fnum(r.blas_s)),
            ]);
        }
        emit(&d);
    }
    if run("fig11") {
        let sizes: &[usize] = if quick {
            &[128, 256, 512]
        } else {
            &[256, 512, 1024]
        };
        let rows = fig11::fig11_time(sizes, if quick { 1 } else { 3 });
        let mut d = BenchDoc::new(
            "fig11",
            "Figure 11 (time): matrix multiplication, loop vs I-GEP vs dgemm",
            quick,
        )
        .host(&gep_bench::util::host_info());
        for r in &rows {
            d.row(vec![
                ("n", inum(r.n as u64)),
                ("loop_s", fnum(r.gep_s)),
                ("igep_s", fnum(r.igep_s)),
                ("dgemm_s", fnum(r.blas_s)),
            ]);
        }
        emit(&d);
        // f64 matrices: 3 x 512 KB at n = 256 exceed the Opteron's 1 MB
        // L2; n = 128 discriminates only in L1.
        let miss_sizes: &[usize] = if quick { &[128] } else { &[128, 256] };
        let misses = fig11::fig11_misses(miss_sizes);
        let mut d = BenchDoc::new(
            "fig11_misses",
            "Figure 11 (misses): simulated AMD Opteron 250, L1/L2 misses",
            quick,
        );
        for m in misses {
            d.row(vec![
                ("n", inum(m.n as u64)),
                ("loop_l1", inum(m.naive.0)),
                ("loop_l2", inum(m.naive.1)),
                ("igep_l1", inum(m.igep.0)),
                ("igep_l2", inum(m.igep.1)),
                ("tiled_l1", inum(m.tiled.0)),
                ("tiled_l2", inum(m.tiled.1)),
            ]);
        }
        emit(&d);
    }
    if run("fig12") {
        let n = if quick { 256 } else { 1024 };
        let max_threads = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .max(8);
        let threads: Vec<usize> = (1..=max_threads.min(8)).collect();
        let apps = fig12::fig12(n, &threads, if quick { 1 } else { 2 });
        let mut d = BenchDoc::new("fig12", "Figure 12: multithreaded I-GEP speedup", quick)
            .host(&gep_bench::util::host_info());
        for app in &apps {
            for &(p, secs, speedup) in &app.points {
                d.row(vec![
                    ("app", Json::Str(app.app.into())),
                    ("threads", inum(p as u64)),
                    ("seconds", fnum(secs)),
                    ("speedup", fnum(speedup)),
                    (
                        "predicted_speedup",
                        fnum(fig12::predicted_speedup(app.app, n, p)),
                    ),
                ]);
            }
        }
        emit(&d);
    }
    if run("algebras") {
        let sizes: &[usize] = if quick { &[64, 128] } else { &[128, 256, 512] };
        let rows = algebras::algebras(sizes, if quick { 1 } else { 3 });
        let mut d = BenchDoc::new(
            "algebras",
            "Algebra sweep: I-GEP per update algebra, GF(2) bitsliced vs scalar",
            quick,
        )
        .host(&gep_bench::util::host_info());
        for r in &rows {
            d.row(vec![
                ("algebra", Json::Str(r.algebra.into())),
                ("kind", Json::Str(r.kind.into())),
                ("n", inum(r.n as u64)),
                ("seconds", fnum(r.seconds)),
                ("mcups", fnum(r.mcups)),
            ]);
        }
        for &n in sizes {
            if let Some(s) = algebras::bitslice_speedup(&rows, n) {
                d.gauge(&format!("gf2.bitslice_speedup.n{n}"), s);
            }
        }
        emit(&d);
    }
    if run("span") {
        let (rows, live_ok) = theory::span_report(if quick { 1 << 10 } else { 1 << 13 });
        let mut d = BenchDoc::new(
            "span",
            "Section 3: span recurrences + live instrumentation cross-check",
            quick,
        );
        for (m, span_full, span_simple, span_mm, work) in rows {
            d.row(vec![
                ("n", inum(m as u64)),
                ("span_full", inum(span_full)),
                ("span_simple", inum(span_simple)),
                ("span_mm", inum(span_mm)),
                ("work", inum(work)),
            ]);
        }
        d.counter("live_cross_check_passed", live_ok as u64);
        emit(&d);
        if !live_ok {
            eprintln!("error: recorded A/B/C/D counts diverge from the span recurrences");
            std::process::exit(1);
        }
    }
    if run("profile") {
        // Fixed base sizes, not the tuned one: quick and full both make 4
        // halvings, so the depth x kind table is identical across hosts
        // and modes, and the CI baseline stays deterministic.
        let (n, base) = if quick { (64, 4) } else { (256, 16) };
        let p = profile::profile_report(n, base, gep_hwc::availability());
        // profile_report installs and takes its own span recorder; restore
        // one so `--flight` sampling keeps running for later experiments.
        if flight_active {
            gep_obs::install(gep_obs::Recorder::counters_only());
        }
        profile::print_profile(&p);
        let mut d = BenchDoc::new(
            "profile",
            "Depth x shape attribution with exact Section 3 cross-check and roofline",
            quick,
        )
        .host(&gep_bench::util::host_info());
        for r in &p.rows {
            // Depth and kind are identity (strings); calls/predicted/flops
            // are deterministic; times carry the noisy `_s` suffix.
            d.row(vec![
                ("depth", Json::Str(r.depth.to_string())),
                ("kind", Json::Str(r.kind.into())),
                ("calls", inum(r.calls)),
                ("predicted", inum(r.predicted)),
                ("flops", inum(r.flops)),
                ("total_s", fnum(r.total_ns as f64 / 1e9)),
                ("self_s", fnum(r.self_ns as f64 / 1e9)),
            ]);
        }
        for s in &p.shapes {
            let mut fields = vec![
                ("shape", Json::Str(s.shape.into())),
                ("leaves", inum(s.leaves)),
                ("flops", inum(s.flops)),
                ("seconds", fnum(s.seconds)),
                ("leaf_gflops", fnum(s.gflops())),
            ];
            // Host-dependent and absent without perf access — like the
            // misses doc, never a fake zero.
            if let Some(m) = s.llc_misses {
                fields.push(("hw_llc_misses", inum(m)));
            }
            d.row(fields);
        }
        for (k, h) in &p.hists {
            d.histogram(k, h);
        }
        d.gauge("roofline.block_transfer_bound", p.bound_block_transfers);
        d.gauge("geometry.llc_bytes", p.geometry.llc_bytes as f64);
        d.gauge("geometry.line_bytes", p.geometry.line_bytes as f64);
        d.counter("cross_check_passed", p.cross_check_ok as u64);
        d.counter("fallback_kernels", p.fallback_kernels);
        emit(&d);
        if json {
            let dir = jsonout::out_dir();
            let path = dir.join("profile_flame.folded");
            let write = std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(&path, p.flame.as_bytes()));
            match write {
                Ok(()) => println!(
                    "wrote {} ({} stacks; load into any flamegraph viewer)",
                    path.display(),
                    p.flame.lines().count()
                ),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if !p.cross_check_ok {
            eprintln!("error: attributed leaf counts diverge from the Section 3 recurrences");
            std::process::exit(1);
        }
    }
    if run("space") {
        let sizes: &[usize] = if quick {
            &[8, 16, 32]
        } else {
            &[8, 16, 32, 64]
        };
        let rows = theory::space_report(sizes);
        let mut d = BenchDoc::new(
            "space",
            "Section 2.2.2: reduced-space C-GEP live-snapshot peaks",
            quick,
        );
        for (n, peak, bound) in rows {
            d.row(vec![
                ("n", inum(n as u64)),
                ("peak_live_snapshots", inum(peak as u64)),
                ("claimed_bound", inum(bound as u64)),
            ]);
        }
        emit(&d);
    }
    if run("layout") {
        let sizes: &[usize] = if quick { &[256] } else { &[256, 512] };
        let rows = layout::layout_study(sizes, 64);
        let mut d = BenchDoc::new(
            "layout",
            "Section 4.2: row-major vs Morton-tiled TLB/L2 misses",
            quick,
        );
        for (n, rm, mt) in rows {
            d.row(vec![
                ("n", inum(n as u64)),
                ("rowmajor_tlb", inum(rm.0)),
                ("rowmajor_l2", inum(rm.1)),
                ("morton_tlb", inum(mt.0)),
                ("morton_l2", inum(mt.1)),
            ]);
        }
        emit(&d);
    }
    if run("lemma31") {
        let (n, m, b) = if quick {
            (64, 8 * 1024, 128)
        } else {
            (128, 16 * 1024, 128)
        };
        let rows = lemma::lemma31(n, m as u64, b);
        let mut d = BenchDoc::new(
            "lemma31",
            "Lemma 3.1(b): deterministic distributed-cache schedule",
            quick,
        );
        for (p, qp) in rows {
            d.row(vec![("p", inum(p as u64)), ("misses", inum(qp))]);
        }
        emit(&d);
    }
    if run("lemma32") {
        let (n, m1) = if quick {
            (32, 2 * 1024)
        } else {
            (64, 4 * 1024)
        };
        let (q1, q2_same, q2_big) = lemma::lemma32(n, m1, 64);
        let mut d = BenchDoc::new("lemma32", "Lemma 3.2(b): shared-cache schedules", quick);
        d.row(vec![
            ("q1", inum(q1)),
            ("q2_same_m", inum(q2_same)),
            ("q2_enlarged", inum(q2_big)),
        ]);
        emit(&d);
    }
    if run("resume") {
        gep_extmem::silence_injected_crash_reports();
        // Recording makes the scenarios publish their extmem/WAL latency
        // histograms and leaf timings into the document.
        if json {
            gep_obs::install(gep_obs::Recorder::counters_only());
        }
        let rows = resume::resume(quick);
        let mut d = BenchDoc::new(
            "resume",
            "Crash-safe out-of-core GEP: checkpoint/recovery determinism",
            quick,
        );
        for r in &rows {
            d.row(vec![
                ("app", Json::Str(r.app.into())),
                ("scenario", Json::Str(r.scenario.into())),
                ("n", inum(r.n as u64)),
                ("base", inum(r.base as u64)),
                // Identity, not a metric: part of the row key, so encode
                // as a string (`snapshot_every` is not a PARAM_KEY).
                ("every", Json::Str(r.snapshot_every.to_string())),
                ("total_steps", inum(r.stats.total_steps)),
                ("resumed_cursor", inum(r.stats.start_cursor)),
                ("executed_steps", inum(r.stats.executed_steps)),
                ("snapshots_written", inum(r.stats.snapshots_written)),
                ("wal_records", inum(r.stats.wal_records)),
                ("wal_bytes", inum(r.stats.wal_bytes)),
                ("snap_bytes", inum(r.stats.snap_bytes)),
                ("ckpt_bytes", inum(r.stats.store_bytes)),
                ("recovery_fallbacks", inum(r.stats.recovery_fallbacks)),
                ("bit_identical", Json::Bool(r.bit_identical)),
            ]);
        }
        if let Some(rec) = gep_obs::take() {
            for (k, h) in &rec.hists {
                d.histogram(k, h);
            }
            reinstall(rec);
        }
        emit(&d);
        if rows.iter().any(|r| !r.bit_identical) {
            eprintln!("error: a recovery scenario diverged from the uninterrupted run");
            std::process::exit(1);
        }
    }
    if run("serve") {
        // A full recorder (gauges too): the server publishes serve.*
        // epoch/batch-depth/cache-age gauges, which the flight sampler
        // streams when `--flight` is active.
        if json || flight_active {
            gep_obs::install(gep_obs::Recorder::new());
        }
        let outcome = serve::serve(quick);
        serve::print_serve(&outcome);
        let mut d = BenchDoc::new(
            "serve",
            "APSP-as-a-service: cached I-GEP solve, epoch swap, loadgen latency",
            quick,
        );
        // Every row field is a pure function of (n, seed, workers) —
        // latency goes only to the histograms object, which `repro
        // compare` never gates on.
        d.row(vec![
            ("n", inum(outcome.n as u64)),
            ("threads", inum(outcome.workers as u64)),
            ("requests", inum(outcome.requests)),
            ("errors", inum(outcome.errors)),
            ("epoch_start", inum(outcome.epoch_start)),
            ("epoch_final", inum(outcome.epoch_final)),
            ("resolves", inum(outcome.resolves)),
            ("mutations", inum(outcome.mutations)),
            ("epoch_regressions", inum(outcome.epoch_regressions)),
            ("oracle_match", Json::Bool(outcome.oracle_match)),
        ]);
        for (op, count) in &outcome.op_counts {
            d.counter(&format!("serve.loadgen.{op}.requests"), *count);
        }
        for (op, hist) in &outcome.latency_ns {
            d.histogram(&format!("serve.latency_ns.{op}"), hist);
        }
        d.gauge("serve.solve_s", outcome.solve_s);
        d.gauge("serve.read_qps", outcome.read_qps);
        if let Some(rec) = gep_obs::take() {
            for (k, v) in &rec.counters {
                d.counter(k, *v);
            }
            reinstall(rec);
        }
        emit(&d);
        if !outcome.oracle_match || outcome.epoch_regressions > 0 || outcome.errors > 0 {
            eprintln!("error: serving run failed verification (oracle/epochs/errors)");
            std::process::exit(1);
        }
    }
    if run("slo") {
        // Like serve: a full recorder so the scrape (and flight sampler,
        // when active) sees the serve.* gauges alongside the server's own
        // per-op/per-phase histograms.
        if json || flight_active {
            gep_obs::install(gep_obs::Recorder::new());
        }
        let outcome = slo::slo(quick);
        slo::print_slo(&outcome);
        let mut d = BenchDoc::new(
            "slo",
            "Serving SLO gate: telemetry accounting, exposition health, mutation freshness",
            quick,
        );
        // Counts, epochs and boolean verdicts are pure functions of
        // (n, seed, workers, rounds) — gated exactly. The `_ns`
        // magnitudes are wall-clock and ride along informationally.
        d.row(vec![
            ("n", inum(outcome.n as u64)),
            ("threads", inum(outcome.workers as u64)),
            ("requests", inum(outcome.requests)),
            ("errors", inum(outcome.errors)),
            ("epoch_final", inum(outcome.epoch_final)),
            ("resolves", inum(outcome.resolves)),
            ("mutations", inum(outcome.mutations)),
            ("epoch_regressions", inum(outcome.epoch_regressions)),
            ("staleness_samples", inum(outcome.staleness_samples)),
            ("slo_pass", Json::Bool(outcome.slo_pass)),
            ("exposition_valid", Json::Bool(outcome.exposition_valid)),
            (
                "server_counts_match",
                Json::Bool(outcome.server_counts_match),
            ),
            ("phases_complete", Json::Bool(outcome.phases_complete)),
            ("p99_dist_server_ns", inum(outcome.p99_dist_server_ns)),
            ("staleness_max_ns", inum(outcome.staleness_max_ns)),
            ("staleness_p50_ns", inum(outcome.staleness_p50_ns)),
            ("queue_wait_max_ns", inum(outcome.queue_wait_max_ns)),
            ("batch_drain_max_ns", inum(outcome.batch_drain_max_ns)),
        ]);
        for (op, count) in &outcome.op_counts {
            d.counter(&format!("serve.loadgen.{op}.requests"), *count);
        }
        for (op, hist) in &outcome.latency_ns {
            d.histogram(&format!("serve.client_latency_ns.{op}"), hist);
        }
        for (name, hist) in &outcome.server_hists {
            d.histogram(name, hist);
        }
        if let Some(rec) = gep_obs::take() {
            for (k, v) in &rec.counters {
                d.counter(k, *v);
            }
            reinstall(rec);
        }
        emit(&d);
        if !outcome.slo_pass {
            eprintln!("error: SLO gate failed (see verdicts above)");
            std::process::exit(1);
        }
    }
    if run("misses") {
        // The recorder collects hwc.* (or hwc.unavailable) counters so the
        // summary and the JSON document both show what was measured.
        gep_obs::install(gep_obs::Recorder::counters_only());
        let outcome = misses::misses(quick);
        misses::print_misses(&outcome);
        let mut d = misses_doc(&outcome, quick);
        if let Some(rec) = gep_obs::take() {
            print!("{}", gep_obs::summary(&rec));
            for (k, v) in &rec.counters {
                d.counter(k, *v);
            }
            for (k, h) in &rec.hists {
                d.histogram(k, h);
            }
            reinstall(rec);
        }
        emit(&d);
    }
    if what == "all" && json {
        append_trajectory(&jsonout::out_dir(), "all", quick);
    }
}
