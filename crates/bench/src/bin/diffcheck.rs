//! Cross-engine divergence localization CLI.
//!
//! ```text
//! cargo run -p gep-bench --release --bin diffcheck              # = all
//! cargo run -p gep-bench --release --bin diffcheck -- regression
//! cargo run -p gep-bench --release --bin diffcheck -- demo
//! cargo run -p gep-bench --release --bin diffcheck -- fuzz 5000
//! ```
//!
//! * `regression` — replays the shrunk instance recorded in
//!   `tests/properties.proptest-regressions` for `cgep_is_fully_general`
//!   through all eight engines and prints each verdict. The fully general
//!   engines (C-GEP family) must match G exactly; I-GEP divergence on this
//!   arbitrary Σ is expected (paper §2.2.1) and printed as such.
//! * `demo` — runs the deliberately broken `cgep_full_buggy` (the
//!   historical wrong `w`-read Iverson bracket) on the same instance,
//!   prints the localized first divergent update with operand/slot/τ
//!   diagnosis, then delta-minimizes the instance and reports the shrunk
//!   witness.
//! * `fuzz [trials]` — random general-Σ instances through all eight
//!   engines; any divergence of a fully general engine is localized and
//!   reported (exit code 1). Every instance has its own RNG seed, printed
//!   on failure; `fuzz --seed <u64>` (decimal or 0x-hex) replays exactly
//!   that instance deterministically.
//! * `kernels [trials]` — the specialized-vs-generic kernel axis: random
//!   instances of the five kernel-backed applications (GE, LU, FW, TC,
//!   MM) run with each `gep-kernels` backend the host supports, compared
//!   against the scalar generic base case (bitwise for `i64`/`bool`,
//!   1e-9 for `f64`; the MM embed-vs-recursion bitwise invariant is
//!   checked under every backend). Seeds print and replay exactly like
//!   `fuzz` (`kernels --seed <u64>`). Passing `--engine-kernels` to
//!   `fuzz` or `all` folds this axis into each fuzz trial.
//! * `algebras [trials]` — the update-algebra axis: random closure
//!   instances over `(min,+)` / `(max,min)` / `(∨,∧)` and elimination
//!   instances over GF(2) (bitsliced 64×64 blocks) and GF(2³¹−1),
//!   checked three ways per algebra: every engine vs an independent
//!   scalar oracle, every available kernel backend vs the generic base
//!   case, and the matmul embed-vs-recursion bitwise invariant. All
//!   algebras here are exact, so every comparison is bitwise. Seeds
//!   print and replay exactly like `fuzz` (`algebras --seed <u64>`).
//! * `crash [trials]` — the crash-recovery axis (`gep_bench::crashcheck`):
//!   each trial runs a checkpointed out-of-core solve (FW over `i64` or
//!   GE over `f64`), kills it at a seed-fuzzed write (optionally tearing
//!   the final stable append), corrupts a checkpoint object, or injects
//!   transient read faults; then resumes and demands the result match the
//!   uninterrupted run **bit for bit**. Failing seeds are printed, replay
//!   via `crash --seed <u64>`, and are also appended to
//!   `diffcheck-crash-failing-seeds.txt` so CI can archive them.

use gep::apps::matmul::{matmul, MatMulEmbedSpec};
use gep::apps::reference::{
    fw_reference, gf2_block_elim_reference, gfp_elim_reference, maxmin_reference, tc_reference,
};
use gep::apps::{ElimSpec, FwSpec, GaussianSpec, LuSpec, SemiringSpec, TransitiveClosureSpec};
use gep::core::algebra::{
    Gf2Block, Gf2x64, GfMersenne31, MaxMinI64, MinPlusI64, OrAndBool, PlusTimesF64, TROPICAL_INF,
};
use gep::matrix::Matrix;
use gep::verify::{
    all_engines, buggy_engine, diff_engine, minimize, recorded_regression, AffineInstance,
};
use gep_kernels::{available_backends, set_backend_override, Backend};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, m: u64) -> u64 {
        self.next() % m
    }
}

fn check_instance(inst: &AffineInstance, label: &str, bases: &[usize]) -> bool {
    let spec = inst.spec();
    let init = inst.init();
    let mut ok = true;
    for base in bases {
        for engine in all_engines() {
            let rep = diff_engine(&spec, &init, &engine, *base);
            if rep.is_violation() {
                ok = false;
                println!("[{label}] base {base}: VIOLATION\n{rep}");
            } else if rep.matches() {
                println!("[{label}] base {base}: {rep}");
            } else {
                println!(
                    "[{label}] base {base}: {}: trace diverges from G \
                     ({}) — expected, not fully general (paper §2.2.1)",
                    engine.name,
                    if rep.result_matches {
                        "final result agrees"
                    } else {
                        "final result differs"
                    }
                );
            }
        }
    }
    ok
}

fn regression() -> bool {
    let inst = recorded_regression();
    println!("replaying recorded cgep_is_fully_general regression instance:");
    println!("{inst}\n");
    let ok = check_instance(&inst, "regression", &[1, 2, 8]);
    println!(
        "\nregression replay: {}",
        if ok {
            "all fully general engines match G"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    ok
}

fn demo() {
    let inst = recorded_regression();
    println!("demo: C-GEP with the wrong w-read bracket (`i >= k` instead of");
    println!("`i > k || (i == k && j > k)`) on the recorded regression instance.\n");
    let rep = diff_engine(&inst.spec(), &inst.init(), &buggy_engine(), 1);
    assert!(
        rep.is_violation(),
        "the planted bug must diverge on the recorded instance"
    );
    println!("localization:\n{rep}\n");

    println!("delta-minimizing (Σ ddmin + index compaction + n-halving + value zeroing)…");
    let fails = |cand: &AffineInstance| {
        diff_engine(&cand.spec(), &cand.init(), &buggy_engine(), 1).is_violation()
    };
    let min = minimize(&inst, &fails);
    println!("minimized witness:\n{min}\n");
    let rep = diff_engine(&min.spec(), &min.init(), &buggy_engine(), 1);
    println!("localization on the minimized witness:\n{rep}");
}

/// Master seed the per-trial seeds derive from.
const FUZZ_MASTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: turns `master + trial` into a well-mixed
/// per-trial seed, so each instance is reproducible from one number.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the random instance identified by `seed`.
fn random_instance(seed: u64) -> AffineInstance {
    // xorshift has 0 as a fixed point; remap it rather than hang.
    let mut rng = Rng(seed.max(1));
    let n = 1usize << (1 + rng.below(3));
    let count = rng.below((n * n * n + 1) as u64) as usize;
    let sigma = (0..count)
        .map(|_| {
            (
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
            )
        })
        .collect();
    let coeffs = (
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
    );
    let vals = (0..n * n).map(|_| rng.below(201) as i64 - 100).collect();
    AffineInstance {
        n,
        sigma,
        coeffs,
        vals,
    }
}

/// Checks the instance of one seed through all engines; prints the seed
/// with any violation so the instance can be replayed via `--seed`.
fn fuzz_one(seed: u64, label: &str) -> bool {
    let inst = random_instance(seed);
    let spec = inst.spec();
    let init = inst.init();
    let mut ok = true;
    for base in [1usize, 2] {
        for engine in all_engines() {
            let rep = diff_engine(&spec, &init, &engine, base);
            if rep.is_violation() {
                ok = false;
                println!("{label} (seed {seed:#018x}) base {base}: VIOLATION\n{rep}");
                println!("instance:\n{inst}\n");
                println!("replay with: diffcheck fuzz --seed {seed:#x}\n");
            }
        }
    }
    ok
}

fn fuzz(trials: u64, replay: Option<u64>, engine_kernels: bool) -> bool {
    if let Some(seed) = replay {
        println!("replaying the instance of seed {seed:#018x}:");
        println!("{}\n", random_instance(seed));
        let mut ok = fuzz_one(seed, "replay");
        if engine_kernels {
            ok &= kernels_one(seed, "replay");
        }
        println!(
            "replay: {}",
            if ok {
                "no violations"
            } else {
                "VIOLATIONS FOUND"
            }
        );
        return ok;
    }
    let mut ok = true;
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED.wrapping_add(trial));
        if !fuzz_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        // The kernels axis is ~50x the cost of one affine trial; thin it.
        if engine_kernels && trial % 50 == 0 && !kernels_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        if (trial + 1) % 500 == 0 {
            println!("… {} trials done", trial + 1);
        }
    }
    println!(
        "fuzz: {trials} trials, {}",
        if ok {
            "no violations"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    ok
}

/// Runs `run` on a clone of `init` with the kernel backend forced (and
/// the override dropped afterwards).
fn run_with<T: Copy>(
    backend: Backend,
    init: &Matrix<T>,
    run: &dyn Fn(&mut Matrix<T>),
) -> Matrix<T> {
    set_backend_override(Some(backend));
    let mut m = init.clone();
    run(&mut m);
    set_backend_override(None);
    m
}

/// One kernels-axis trial: random instances of the five kernel-backed
/// applications, every available backend vs the scalar generic base case.
fn kernels_one(seed: u64, label: &str) -> bool {
    let mut rng = Rng(seed.max(1));
    let n = 1usize << (2 + rng.below(4)); // 4, 8, 16, 32
    let bases = [1usize, 2, 3, 4, 7, 8, 16];
    let base = bases[rng.below(bases.len() as u64) as usize];
    let simd: Vec<Backend> = available_backends()
        .into_iter()
        .filter(|b| *b != Backend::Generic)
        .collect();

    let mut ok = true;
    let mut report = |app: &str, backend: Backend, detail: String| {
        ok = false;
        println!(
            "{label} (seed {seed:#018x}) kernels axis: {app} backend {} n {n} base {base} \
             diverges from generic: {detail}",
            backend.name()
        );
        println!("replay with: diffcheck kernels --seed {seed:#x}\n");
    };

    // f64 GE / LU: tolerance comparison (the AVX2 backend fuses
    // multiply-add, legitimately changing the last bits).
    let mut ge_init = Matrix::from_fn(n, n, |_, _| rng.below(1000) as f64 / 1000.0 - 0.5);
    for i in 0..n {
        ge_init[(i, i)] = n as f64 + 2.0;
    }
    for (app, run) in [
        (
            "ge",
            (&|m: &mut Matrix<f64>| gep::core::igep_opt(&GaussianSpec, m, base))
                as &dyn Fn(&mut Matrix<f64>),
        ),
        ("lu", &|m: &mut Matrix<f64>| {
            gep::core::igep_opt(&LuSpec, m, base)
        }),
    ] {
        let want = run_with(Backend::Generic, &ge_init, run);
        for &backend in &simd {
            let got = run_with(backend, &ge_init, run);
            if !got.approx_eq(&want, 1e-9) {
                report(
                    app,
                    backend,
                    format!("max |delta| = {:e}", got.max_abs_diff(&want)),
                );
            }
        }
    }

    // i64 FW and bool TC: min/or are exact, so bitwise equality holds.
    let fw_init = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0i64
        } else if rng.below(4) == 0 {
            i64::MAX / 4
        } else {
            rng.below(100) as i64 + 1
        }
    });
    let fw_run: &dyn Fn(&mut Matrix<i64>) =
        &|m| gep::core::igep_opt(&FwSpec::<i64>::new(), m, base);
    let fw_want = run_with(Backend::Generic, &fw_init, fw_run);
    for &backend in &simd {
        if run_with(backend, &fw_init, fw_run) != fw_want {
            report("fw", backend, "bitwise i64 mismatch".into());
        }
    }

    let tc_init = Matrix::from_fn(n, n, |i, j| i == j || rng.below(4) == 0);
    let tc_run: &dyn Fn(&mut Matrix<bool>) =
        &|m| gep::core::igep_opt(&TransitiveClosureSpec, m, base);
    let tc_want = run_with(Backend::Generic, &tc_init, tc_run);
    for &backend in &simd {
        if run_with(backend, &tc_init, tc_run) != tc_want {
            report("tc", backend, "bitwise bool mismatch".into());
        }
    }

    // MM: backend vs generic with tolerance, plus the embed-vs-recursion
    // bitwise invariant under every backend (both paths must route each
    // (i,j,k) contribution through the same panel op in the same order).
    let a = Matrix::from_fn(n, n, |_, _| rng.below(200) as f64 / 100.0 - 1.0);
    let b = Matrix::from_fn(n, n, |_, _| rng.below(200) as f64 / 100.0 - 1.0);
    let emb_init = Matrix::from_fn(2 * n, 2 * n, |i, j| match (i < n, j < n) {
        (true, false) => b[(i, j - n)],
        (false, true) => a[(i - n, j)],
        _ => 0.0,
    });
    set_backend_override(Some(Backend::Generic));
    let mm_want = matmul::<PlusTimesF64>(&a, &b, base);
    set_backend_override(None);
    for backend in available_backends() {
        set_backend_override(Some(backend));
        let dac = matmul::<PlusTimesF64>(&a, &b, base);
        let mut emb = emb_init.clone();
        gep::core::igep_opt(&MatMulEmbedSpec::<PlusTimesF64>::new(n), &mut emb, base);
        set_backend_override(None);
        let emb_c = Matrix::from_fn(n, n, |i, j| emb[(n + i, n + j)]);
        if emb_c != dac {
            report(
                "mm",
                backend,
                "embed-vs-recursion bitwise invariant broken".into(),
            );
        }
        if backend != Backend::Generic && !dac.approx_eq(&mm_want, 1e-9) {
            report(
                "mm",
                backend,
                format!("max |delta| = {:e}", dac.max_abs_diff(&mm_want)),
            );
        }
    }
    ok
}

/// The kernels axis as a standalone fuzzer (subcommand `kernels`).
fn kernels_fuzz(trials: u64, replay: Option<u64>) -> bool {
    if available_backends().len() <= 1 {
        println!("kernels: only the generic backend is available on this host; nothing to diff");
        return true;
    }
    if let Some(seed) = replay {
        println!("replaying the kernels-axis instance of seed {seed:#018x}:");
        let ok = kernels_one(seed, "replay");
        println!(
            "replay: {}",
            if ok {
                "no divergence"
            } else {
                "DIVERGENCE FOUND"
            }
        );
        return ok;
    }
    let mut ok = true;
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED
            .wrapping_add(0x4B45_524E)
            .wrapping_add(trial));
        if !kernels_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        if (trial + 1) % 100 == 0 {
            println!("… {} kernel trials done", trial + 1);
        }
    }
    println!(
        "kernels: {trials} trials x {} backends, {}",
        available_backends().len() - 1,
        if ok {
            "no divergence from the generic base case"
        } else {
            "DIVERGENCE FOUND"
        }
    );
    ok
}

/// Runs one closure (semiring FW-style) instance of algebra `A` through
/// every engine against `oracle`, then every non-generic backend against
/// the generic result. Exact algebras only: all comparisons are bitwise.
fn closure_algebra_check<A: gep_kernels::AlgebraKernels>(
    init: &Matrix<A::Elem>,
    oracle: &Matrix<A::Elem>,
    base: usize,
    report: &mut dyn FnMut(&'static str, String),
) {
    let spec = SemiringSpec::<A>::new();
    let mut g = init.clone();
    gep::core::gep_iterative(&spec, &mut g);
    if &g != oracle {
        report(A::NAME, "engine G diverges from the scalar oracle".into());
    }
    let mut f = init.clone();
    gep::core::igep(&spec, &mut f, base);
    if &f != oracle {
        report(
            A::NAME,
            format!("engine F (base {base}) diverges from the scalar oracle"),
        );
    }
    let mut o = init.clone();
    gep::core::igep_opt(&spec, &mut o, base);
    if &o != oracle {
        report(
            A::NAME,
            format!("engine A/B/C/D (base {base}) diverges from the scalar oracle"),
        );
    }
    let mut h = init.clone();
    gep::core::cgep_full(&spec, &mut h, base);
    if &h != oracle {
        report(
            A::NAME,
            format!("engine H (base {base}) diverges from the scalar oracle"),
        );
    }
    let run: &dyn Fn(&mut Matrix<A::Elem>) = &|m| gep::core::igep_opt(&spec, m, base);
    let want = run_with(Backend::Generic, init, run);
    for backend in available_backends() {
        if backend == Backend::Generic {
            continue;
        }
        if run_with(backend, init, run) != want {
            report(
                A::NAME,
                format!(
                    "backend {} diverges from generic (base {base})",
                    backend.name()
                ),
            );
        }
    }
}

/// The matmul embed-vs-recursion bitwise invariant over algebra `A`,
/// checked under every available backend.
fn embed_vs_recursion_check<A: gep_kernels::AlgebraKernels>(
    a: &Matrix<A::Elem>,
    b: &Matrix<A::Elem>,
    base: usize,
    report: &mut dyn FnMut(&'static str, String),
) {
    let n = a.n();
    let emb_init = Matrix::from_fn(2 * n, 2 * n, |i, j| match (i < n, j < n) {
        (true, false) => b[(i, j - n)],
        (false, true) => a[(i - n, j)],
        _ => A::ZERO,
    });
    for backend in available_backends() {
        set_backend_override(Some(backend));
        let dac = matmul::<A>(a, b, base);
        let mut emb = emb_init.clone();
        gep::core::igep_opt(&MatMulEmbedSpec::<A>::new(n), &mut emb, base);
        set_backend_override(None);
        let emb_c = Matrix::from_fn(n, n, |i, j| emb[(n + i, n + j)]);
        if emb_c != dac {
            report(
                A::NAME,
                format!(
                    "matmul embed-vs-recursion bitwise invariant broken under backend {} \
                     (base {base})",
                    backend.name()
                ),
            );
        }
    }
}

/// Runs one elimination instance of algebra `A` through every engine
/// against `oracle`, then every non-generic backend against the generic
/// result.
fn elim_algebra_check<A>(
    init: &Matrix<A::Elem>,
    oracle: &Matrix<A::Elem>,
    base: usize,
    report: &mut dyn FnMut(&'static str, String),
) where
    A: gep_kernels::AlgebraKernels + gep::core::algebra::EliminationAlgebra,
{
    let spec = ElimSpec::<A>::new();
    let mut g = init.clone();
    gep::core::gep_iterative(&spec, &mut g);
    if &g != oracle {
        report(
            A::NAME,
            "elimination engine G diverges from the scalar oracle".into(),
        );
    }
    let mut o = init.clone();
    gep::core::igep_opt(&spec, &mut o, base);
    if &o != oracle {
        report(
            A::NAME,
            format!("elimination engine A/B/C/D (base {base}) diverges from the scalar oracle"),
        );
    }
    let mut h = init.clone();
    gep::core::cgep_full(&spec, &mut h, base);
    if &h != oracle {
        report(
            A::NAME,
            format!("elimination engine H (base {base}) diverges from the oracle"),
        );
    }
    let run: &dyn Fn(&mut Matrix<A::Elem>) = &|m| gep::core::igep_opt(&spec, m, base);
    let want = run_with(Backend::Generic, init, run);
    for backend in available_backends() {
        if backend == Backend::Generic {
            continue;
        }
        if run_with(backend, init, run) != want {
            report(
                A::NAME,
                format!(
                    "elimination backend {} diverges from generic (base {base})",
                    backend.name()
                ),
            );
        }
    }
}

/// Random invertible 64×64 bit block (unit-lower · unit-upper product:
/// every leading minor is 1).
fn gf2_invertible_block(rng: &mut Rng) -> Gf2Block {
    let mut lo = Gf2Block::IDENTITY;
    let mut up = Gf2Block::IDENTITY;
    for r in 0..64 {
        lo.0[r] |= rng.next() & (((1u128 << r) - 1) as u64);
        up.0[r] |= rng.next() & !(((1u128 << (r + 1)) - 1) as u64);
    }
    lo.mul(&up)
}

/// Random GF(2) block matrix with nonsingular leading block minors
/// (block-level unit-lower · upper product with invertible diagonal
/// blocks), so elimination never hits a singular pivot block.
fn gf2_elim_instance(n: usize, rng: &mut Rng) -> Matrix<Gf2Block> {
    let rnd_block = |rng: &mut Rng| Gf2Block(std::array::from_fn(|_| rng.next()));
    let mut lo = Matrix::square(n, Gf2Block::ZERO);
    let mut up = Matrix::square(n, Gf2Block::ZERO);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                lo[(i, j)] = Gf2Block::IDENTITY;
                up[(i, j)] = gf2_invertible_block(rng);
            } else if i > j {
                lo[(i, j)] = rnd_block(rng);
            } else {
                up[(i, j)] = rnd_block(rng);
            }
        }
    }
    Matrix::from_fn(n, n, |i, j| {
        let mut acc = Gf2Block::ZERO;
        for m in 0..n {
            acc.xor_assign(&lo[(i, m)].mul(&up[(m, j)]));
        }
        acc
    })
}

/// One algebra-axis trial (see the module docs for what is covered).
fn algebras_one(seed: u64, label: &str) -> bool {
    let mut rng = Rng(seed.max(1));
    let n = 1usize << (2 + rng.below(3)); // 4, 8, 16
    let bases = [1usize, 2, 4, 8];
    let base = bases[rng.below(bases.len() as u64) as usize];

    let mut ok = true;
    let mut report = |algebra: &'static str, detail: String| {
        ok = false;
        println!("{label} (seed {seed:#018x}) algebra axis: {algebra} n {n} base {base}: {detail}");
        println!("replay with: diffcheck algebras --seed {seed:#x}\n");
    };

    // (min, +): shortest paths with INF sprinkled in, plus near-sentinel
    // weights so the saturating/absorbing ⊗ is exercised, not just the
    // comfortable middle of the range.
    let fw_init = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0i64
        } else {
            match rng.below(8) {
                0 | 1 => TROPICAL_INF,
                2 => TROPICAL_INF - 1 - rng.below(50) as i64,
                _ => rng.below(100) as i64 + 1,
            }
        }
    });
    closure_algebra_check::<MinPlusI64>(&fw_init, &fw_reference(&fw_init), base, &mut report);

    // (max, min): widest paths / bottleneck capacities; ZERO = i64::MIN
    // marks a missing edge, the diagonal is ONE (unbounded self-capacity).
    let mm_init = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            i64::MAX
        } else if rng.below(4) == 0 {
            i64::MIN
        } else {
            rng.below(1000) as i64
        }
    });
    closure_algebra_check::<MaxMinI64>(&mm_init, &maxmin_reference(&mm_init), base, &mut report);

    // (∨, ∧): reachability on a reflexive random digraph.
    let tc_init = Matrix::from_fn(n, n, |i, j| i == j || rng.below(4) == 0);
    closure_algebra_check::<OrAndBool>(&tc_init, &tc_reference(&tc_init), base, &mut report);

    // Embed-vs-recursion over the exact semirings (bitwise, all backends).
    let a = Matrix::from_fn(n, n, |_, _| rng.below(200) as i64);
    let b = Matrix::from_fn(n, n, |_, _| rng.below(200) as i64);
    embed_vs_recursion_check::<MinPlusI64>(&a, &b, base, &mut report);
    embed_vs_recursion_check::<MaxMinI64>(&a, &b, base, &mut report);
    let ab = Matrix::from_fn(n, n, |_, _| rng.below(3) == 0);
    let bb = Matrix::from_fn(n, n, |_, _| rng.below(3) == 0);
    embed_vs_recursion_check::<OrAndBool>(&ab, &bb, base, &mut report);

    // GF(2), bitsliced: elimination against the scalar bool-matrix
    // reference, plus the embed invariant on the (noncommutative) block
    // ring. Block count is kept small — each cell is a 64×64 bit tile.
    let bn = 1usize << rng.below(3); // 1, 2, 4 blocks per side
    let gf2_init = gf2_elim_instance(bn, &mut rng);
    elim_algebra_check::<Gf2x64>(
        &gf2_init,
        &gf2_block_elim_reference(&gf2_init),
        base.min(bn),
        &mut report,
    );
    let ga = Matrix::from_fn(bn, bn, |_, _| Gf2Block(std::array::from_fn(|_| rng.next())));
    let gb = Matrix::from_fn(bn, bn, |_, _| Gf2Block(std::array::from_fn(|_| rng.next())));
    embed_vs_recursion_check::<Gf2x64>(&ga, &gb, base.min(bn), &mut report);

    // GF(2³¹ − 1): Barrett-reduced elimination vs the naive u128 `%`
    // reference. A heavy diagonal keeps the leading minors nonsingular.
    const P: u64 = 2_147_483_647;
    let gfp_init = Matrix::from_fn(n, n, |i, j| {
        let x = rng.next() % P;
        if i == j && x == 0 {
            1
        } else {
            x
        }
    });
    elim_algebra_check::<GfMersenne31>(
        &gfp_init,
        &gfp_elim_reference(&gfp_init, P),
        base,
        &mut report,
    );
    ok
}

/// The algebra axis as a standalone fuzzer (subcommand `algebras`).
fn algebras_fuzz(trials: u64, replay: Option<u64>) -> bool {
    if let Some(seed) = replay {
        println!("replaying the algebra-axis instance of seed {seed:#018x}:");
        let ok = algebras_one(seed, "replay");
        println!(
            "replay: {}",
            if ok {
                "no divergence"
            } else {
                "DIVERGENCE FOUND"
            }
        );
        return ok;
    }
    let mut ok = true;
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED
            .wrapping_add(0x414C_4745)
            .wrapping_add(trial));
        if !algebras_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        if (trial + 1) % 25 == 0 {
            println!("… {} algebra trials done", trial + 1);
        }
    }
    println!(
        "algebras: {trials} trials x 6 algebras x {} backends, {}",
        available_backends().len(),
        if ok {
            "no divergence (engines, backends, embed-vs-recursion all bitwise)"
        } else {
            "DIVERGENCE FOUND"
        }
    );
    ok
}

/// The crash-recovery axis as a standalone fuzzer (subcommand `crash`).
/// Failing seeds go to `diffcheck-crash-failing-seeds.txt` for CI to
/// archive as an artifact.
fn crash_fuzz(trials: u64, replay: Option<u64>) -> bool {
    gep::extmem::silence_injected_crash_reports();
    if let Some(seed) = replay {
        println!("replaying the crash-axis trial of seed {seed:#018x}:");
        match gep_bench::crashcheck::crash_trial(seed) {
            Ok(stats) => {
                println!(
                    "replay: recovered bit-identically (resumed from cursor {} of {}, \
                     {} snapshots, {} recovery fallbacks)",
                    stats.start_cursor,
                    stats.total_steps,
                    stats.snapshots_written,
                    stats.recovery_fallbacks,
                );
                return true;
            }
            Err(e) => {
                println!("replay: RECOVERY VIOLATION\n{e}");
                return false;
            }
        }
    }
    let mut failing: Vec<u64> = Vec::new();
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED
            .wrapping_add(0x4352_4153)
            .wrapping_add(trial));
        if let Err(e) = gep_bench::crashcheck::crash_trial(seed) {
            println!("trial {trial}: RECOVERY VIOLATION\n{e}");
            println!("replay with: diffcheck crash --seed {seed:#x}\n");
            failing.push(seed);
        }
        if (trial + 1) % 50 == 0 {
            println!("… {} crash trials done", trial + 1);
        }
    }
    if !failing.is_empty() {
        let lines: String = failing.iter().map(|s| format!("{s:#018x}\n")).collect();
        let path = "diffcheck-crash-failing-seeds.txt";
        match std::fs::write(path, &lines) {
            Ok(()) => println!("wrote {} failing seed(s) to {path}", failing.len()),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    println!(
        "crash: {trials} trials, {}",
        if failing.is_empty() {
            "every interrupted run recovered bit-identically"
        } else {
            "RECOVERY VIOLATIONS FOUND"
        }
    );
    failing.is_empty()
}

/// Parses a seed in decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let engine_kernels = if let Some(pos) = args.iter().position(|a| a == "--engine-kernels") {
        args.remove(pos);
        true
    } else {
        false
    };
    let mut seed: Option<u64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        let value = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--seed needs a value");
            std::process::exit(2);
        });
        seed = Some(parse_seed(&value).unwrap_or_else(|| {
            eprintln!("--seed '{value}' is not a u64 (decimal or 0x-hex)");
            std::process::exit(2);
        }));
        args.drain(pos..=pos + 1);
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let ok = match what {
        "regression" => regression(),
        "demo" => {
            demo();
            true
        }
        "fuzz" => {
            let trials = match args.get(1) {
                None => 2000u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("fuzz: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            fuzz(trials, seed, engine_kernels)
        }
        "kernels" => {
            let trials = match args.get(1) {
                None => 200u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("kernels: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            kernels_fuzz(trials, seed)
        }
        "algebras" => {
            let trials = match args.get(1) {
                None => 50u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("algebras: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            algebras_fuzz(trials, seed)
        }
        "crash" => {
            let trials = match args.get(1) {
                None => 200u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("crash: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            crash_fuzz(trials, seed)
        }
        "all" => {
            let a = regression();
            println!();
            demo();
            println!();
            let b = fuzz(2000, seed, engine_kernels);
            println!();
            let c = algebras_fuzz(50, seed);
            println!();
            a && b && c && crash_fuzz(50, seed)
        }
        other => {
            eprintln!(
                "unknown subcommand '{other}'; one of: regression, demo, fuzz, kernels, \
                 algebras, crash, all"
            );
            std::process::exit(2);
        }
    };
    if !ok {
        std::process::exit(1);
    }
}
