//! Cross-engine divergence localization CLI.
//!
//! ```text
//! cargo run -p gep-bench --release --bin diffcheck              # = all
//! cargo run -p gep-bench --release --bin diffcheck -- regression
//! cargo run -p gep-bench --release --bin diffcheck -- demo
//! cargo run -p gep-bench --release --bin diffcheck -- fuzz 5000
//! ```
//!
//! * `regression` — replays the shrunk instance recorded in
//!   `tests/properties.proptest-regressions` for `cgep_is_fully_general`
//!   through all eight engines and prints each verdict. The fully general
//!   engines (C-GEP family) must match G exactly; I-GEP divergence on this
//!   arbitrary Σ is expected (paper §2.2.1) and printed as such.
//! * `demo` — runs the deliberately broken `cgep_full_buggy` (the
//!   historical wrong `w`-read Iverson bracket) on the same instance,
//!   prints the localized first divergent update with operand/slot/τ
//!   diagnosis, then delta-minimizes the instance and reports the shrunk
//!   witness.
//! * `fuzz [trials]` — random general-Σ instances through all eight
//!   engines; any divergence of a fully general engine is localized and
//!   reported (exit code 1). Every instance has its own RNG seed, printed
//!   on failure; `fuzz --seed <u64>` (decimal or 0x-hex) replays exactly
//!   that instance deterministically.
//! * `kernels [trials]` — the specialized-vs-generic kernel axis: random
//!   instances of the five kernel-backed applications (GE, LU, FW, TC,
//!   MM) run with each `gep-kernels` backend the host supports, compared
//!   against the scalar generic base case (bitwise for `i64`/`bool`,
//!   1e-9 for `f64`; the MM embed-vs-recursion bitwise invariant is
//!   checked under every backend). Seeds print and replay exactly like
//!   `fuzz` (`kernels --seed <u64>`). Passing `--engine-kernels` to
//!   `fuzz` or `all` folds this axis into each fuzz trial.

use gep::apps::matmul::{matmul, MatMulEmbedSpec};
use gep::apps::{FwSpec, GaussianSpec, LuSpec, TransitiveClosureSpec};
use gep::matrix::Matrix;
use gep::verify::{
    all_engines, buggy_engine, diff_engine, minimize, recorded_regression, AffineInstance,
};
use gep_kernels::{available_backends, set_backend_override, Backend};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, m: u64) -> u64 {
        self.next() % m
    }
}

fn check_instance(inst: &AffineInstance, label: &str, bases: &[usize]) -> bool {
    let spec = inst.spec();
    let init = inst.init();
    let mut ok = true;
    for base in bases {
        for engine in all_engines() {
            let rep = diff_engine(&spec, &init, &engine, *base);
            if rep.is_violation() {
                ok = false;
                println!("[{label}] base {base}: VIOLATION\n{rep}");
            } else if rep.matches() {
                println!("[{label}] base {base}: {rep}");
            } else {
                println!(
                    "[{label}] base {base}: {}: trace diverges from G \
                     ({}) — expected, not fully general (paper §2.2.1)",
                    engine.name,
                    if rep.result_matches {
                        "final result agrees"
                    } else {
                        "final result differs"
                    }
                );
            }
        }
    }
    ok
}

fn regression() -> bool {
    let inst = recorded_regression();
    println!("replaying recorded cgep_is_fully_general regression instance:");
    println!("{inst}\n");
    let ok = check_instance(&inst, "regression", &[1, 2, 8]);
    println!(
        "\nregression replay: {}",
        if ok {
            "all fully general engines match G"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    ok
}

fn demo() {
    let inst = recorded_regression();
    println!("demo: C-GEP with the wrong w-read bracket (`i >= k` instead of");
    println!("`i > k || (i == k && j > k)`) on the recorded regression instance.\n");
    let rep = diff_engine(&inst.spec(), &inst.init(), &buggy_engine(), 1);
    assert!(
        rep.is_violation(),
        "the planted bug must diverge on the recorded instance"
    );
    println!("localization:\n{rep}\n");

    println!("delta-minimizing (Σ ddmin + index compaction + n-halving + value zeroing)…");
    let fails = |cand: &AffineInstance| {
        diff_engine(&cand.spec(), &cand.init(), &buggy_engine(), 1).is_violation()
    };
    let min = minimize(&inst, &fails);
    println!("minimized witness:\n{min}\n");
    let rep = diff_engine(&min.spec(), &min.init(), &buggy_engine(), 1);
    println!("localization on the minimized witness:\n{rep}");
}

/// Master seed the per-trial seeds derive from.
const FUZZ_MASTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: turns `master + trial` into a well-mixed
/// per-trial seed, so each instance is reproducible from one number.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the random instance identified by `seed`.
fn random_instance(seed: u64) -> AffineInstance {
    // xorshift has 0 as a fixed point; remap it rather than hang.
    let mut rng = Rng(seed.max(1));
    let n = 1usize << (1 + rng.below(3));
    let count = rng.below((n * n * n + 1) as u64) as usize;
    let sigma = (0..count)
        .map(|_| {
            (
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
            )
        })
        .collect();
    let coeffs = (
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
        rng.below(7) as i64 - 3,
    );
    let vals = (0..n * n).map(|_| rng.below(201) as i64 - 100).collect();
    AffineInstance {
        n,
        sigma,
        coeffs,
        vals,
    }
}

/// Checks the instance of one seed through all engines; prints the seed
/// with any violation so the instance can be replayed via `--seed`.
fn fuzz_one(seed: u64, label: &str) -> bool {
    let inst = random_instance(seed);
    let spec = inst.spec();
    let init = inst.init();
    let mut ok = true;
    for base in [1usize, 2] {
        for engine in all_engines() {
            let rep = diff_engine(&spec, &init, &engine, base);
            if rep.is_violation() {
                ok = false;
                println!("{label} (seed {seed:#018x}) base {base}: VIOLATION\n{rep}");
                println!("instance:\n{inst}\n");
                println!("replay with: diffcheck fuzz --seed {seed:#x}\n");
            }
        }
    }
    ok
}

fn fuzz(trials: u64, replay: Option<u64>, engine_kernels: bool) -> bool {
    if let Some(seed) = replay {
        println!("replaying the instance of seed {seed:#018x}:");
        println!("{}\n", random_instance(seed));
        let mut ok = fuzz_one(seed, "replay");
        if engine_kernels {
            ok &= kernels_one(seed, "replay");
        }
        println!(
            "replay: {}",
            if ok {
                "no violations"
            } else {
                "VIOLATIONS FOUND"
            }
        );
        return ok;
    }
    let mut ok = true;
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED.wrapping_add(trial));
        if !fuzz_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        // The kernels axis is ~50x the cost of one affine trial; thin it.
        if engine_kernels && trial % 50 == 0 && !kernels_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        if (trial + 1) % 500 == 0 {
            println!("… {} trials done", trial + 1);
        }
    }
    println!(
        "fuzz: {trials} trials, {}",
        if ok {
            "no violations"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    ok
}

/// Runs `run` on a clone of `init` with the kernel backend forced (and
/// the override dropped afterwards).
fn run_with<T: Copy>(
    backend: Backend,
    init: &Matrix<T>,
    run: &dyn Fn(&mut Matrix<T>),
) -> Matrix<T> {
    set_backend_override(Some(backend));
    let mut m = init.clone();
    run(&mut m);
    set_backend_override(None);
    m
}

/// One kernels-axis trial: random instances of the five kernel-backed
/// applications, every available backend vs the scalar generic base case.
fn kernels_one(seed: u64, label: &str) -> bool {
    let mut rng = Rng(seed.max(1));
    let n = 1usize << (2 + rng.below(4)); // 4, 8, 16, 32
    let bases = [1usize, 2, 3, 4, 7, 8, 16];
    let base = bases[rng.below(bases.len() as u64) as usize];
    let simd: Vec<Backend> = available_backends()
        .into_iter()
        .filter(|b| *b != Backend::Generic)
        .collect();

    let mut ok = true;
    let mut report = |app: &str, backend: Backend, detail: String| {
        ok = false;
        println!(
            "{label} (seed {seed:#018x}) kernels axis: {app} backend {} n {n} base {base} \
             diverges from generic: {detail}",
            backend.name()
        );
        println!("replay with: diffcheck kernels --seed {seed:#x}\n");
    };

    // f64 GE / LU: tolerance comparison (the AVX2 backend fuses
    // multiply-add, legitimately changing the last bits).
    let mut ge_init = Matrix::from_fn(n, n, |_, _| rng.below(1000) as f64 / 1000.0 - 0.5);
    for i in 0..n {
        ge_init[(i, i)] = n as f64 + 2.0;
    }
    for (app, run) in [
        ("ge", (&|m: &mut Matrix<f64>| {
            gep::core::igep_opt(&GaussianSpec, m, base)
        }) as &dyn Fn(&mut Matrix<f64>)),
        ("lu", &|m: &mut Matrix<f64>| {
            gep::core::igep_opt(&LuSpec, m, base)
        }),
    ] {
        let want = run_with(Backend::Generic, &ge_init, run);
        for &backend in &simd {
            let got = run_with(backend, &ge_init, run);
            if !got.approx_eq(&want, 1e-9) {
                report(app, backend, format!("max |delta| = {:e}", got.max_abs_diff(&want)));
            }
        }
    }

    // i64 FW and bool TC: min/or are exact, so bitwise equality holds.
    let fw_init = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0i64
        } else if rng.below(4) == 0 {
            i64::MAX / 4
        } else {
            rng.below(100) as i64 + 1
        }
    });
    let fw_run: &dyn Fn(&mut Matrix<i64>) =
        &|m| gep::core::igep_opt(&FwSpec::<i64>::new(), m, base);
    let fw_want = run_with(Backend::Generic, &fw_init, fw_run);
    for &backend in &simd {
        if run_with(backend, &fw_init, fw_run) != fw_want {
            report("fw", backend, "bitwise i64 mismatch".into());
        }
    }

    let tc_init = Matrix::from_fn(n, n, |i, j| i == j || rng.below(4) == 0);
    let tc_run: &dyn Fn(&mut Matrix<bool>) =
        &|m| gep::core::igep_opt(&TransitiveClosureSpec, m, base);
    let tc_want = run_with(Backend::Generic, &tc_init, tc_run);
    for &backend in &simd {
        if run_with(backend, &tc_init, tc_run) != tc_want {
            report("tc", backend, "bitwise bool mismatch".into());
        }
    }

    // MM: backend vs generic with tolerance, plus the embed-vs-recursion
    // bitwise invariant under every backend (both paths must route each
    // (i,j,k) contribution through the same panel op in the same order).
    let a = Matrix::from_fn(n, n, |_, _| rng.below(200) as f64 / 100.0 - 1.0);
    let b = Matrix::from_fn(n, n, |_, _| rng.below(200) as f64 / 100.0 - 1.0);
    let emb_init = Matrix::from_fn(2 * n, 2 * n, |i, j| match (i < n, j < n) {
        (true, false) => b[(i, j - n)],
        (false, true) => a[(i - n, j)],
        _ => 0.0,
    });
    set_backend_override(Some(Backend::Generic));
    let mm_want = matmul(&a, &b, base);
    set_backend_override(None);
    for backend in available_backends() {
        set_backend_override(Some(backend));
        let dac = matmul(&a, &b, base);
        let mut emb = emb_init.clone();
        gep::core::igep_opt(&MatMulEmbedSpec { n }, &mut emb, base);
        set_backend_override(None);
        let emb_c = Matrix::from_fn(n, n, |i, j| emb[(n + i, n + j)]);
        if emb_c != dac {
            report(
                "mm",
                backend,
                "embed-vs-recursion bitwise invariant broken".into(),
            );
        }
        if backend != Backend::Generic && !dac.approx_eq(&mm_want, 1e-9) {
            report(
                "mm",
                backend,
                format!("max |delta| = {:e}", dac.max_abs_diff(&mm_want)),
            );
        }
    }
    ok
}

/// The kernels axis as a standalone fuzzer (subcommand `kernels`).
fn kernels_fuzz(trials: u64, replay: Option<u64>) -> bool {
    if available_backends().len() <= 1 {
        println!("kernels: only the generic backend is available on this host; nothing to diff");
        return true;
    }
    if let Some(seed) = replay {
        println!("replaying the kernels-axis instance of seed {seed:#018x}:");
        let ok = kernels_one(seed, "replay");
        println!(
            "replay: {}",
            if ok {
                "no divergence"
            } else {
                "DIVERGENCE FOUND"
            }
        );
        return ok;
    }
    let mut ok = true;
    for trial in 0..trials {
        let seed = mix(FUZZ_MASTER_SEED.wrapping_add(0x4B45_524E).wrapping_add(trial));
        if !kernels_one(seed, &format!("trial {trial}")) {
            ok = false;
        }
        if (trial + 1) % 100 == 0 {
            println!("… {} kernel trials done", trial + 1);
        }
    }
    println!(
        "kernels: {trials} trials x {} backends, {}",
        available_backends().len() - 1,
        if ok {
            "no divergence from the generic base case"
        } else {
            "DIVERGENCE FOUND"
        }
    );
    ok
}

/// Parses a seed in decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let engine_kernels = if let Some(pos) = args.iter().position(|a| a == "--engine-kernels") {
        args.remove(pos);
        true
    } else {
        false
    };
    let mut seed: Option<u64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        let value = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--seed needs a value");
            std::process::exit(2);
        });
        seed = Some(parse_seed(&value).unwrap_or_else(|| {
            eprintln!("--seed '{value}' is not a u64 (decimal or 0x-hex)");
            std::process::exit(2);
        }));
        args.drain(pos..=pos + 1);
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let ok = match what {
        "regression" => regression(),
        "demo" => {
            demo();
            true
        }
        "fuzz" => {
            let trials = match args.get(1) {
                None => 2000u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("fuzz: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            fuzz(trials, seed, engine_kernels)
        }
        "kernels" => {
            let trials = match args.get(1) {
                None => 200u64,
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("kernels: trial count '{s}' is not a non-negative integer");
                    std::process::exit(2);
                }),
            };
            kernels_fuzz(trials, seed)
        }
        "all" => {
            let a = regression();
            println!();
            demo();
            println!();
            a && fuzz(2000, seed, engine_kernels)
        }
        other => {
            eprintln!("unknown subcommand '{other}'; one of: regression, demo, fuzz, kernels, all");
            std::process::exit(2);
        }
    };
    if !ok {
        std::process::exit(1);
    }
}
