//! Deterministic workload generators shared by the harness and benches.

use gep_apps::floyd_warshall::Weight;
use gep_matrix::Matrix;

/// xorshift64 — deterministic, seedable, dependency-free.
#[derive(Clone, Copy, Debug)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Next raw value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random directed graph as an `i64` distance matrix: edge probability
/// `2/3`, weights in `[1, 100]`, zero diagonal.
pub fn random_dist_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut rng = XorShift(seed | 1);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0
        } else if rng.next_u64() % 3 == 0 {
            <i64 as Weight>::INFINITY
        } else {
            (rng.next_u64() % 100) as i64 + 1
        }
    })
}

/// Random diagonally dominant matrix (safe for elimination without
/// pivoting).
pub fn dd_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = XorShift(seed | 1);
    let mut m = Matrix::from_fn(n, n, |_, _| rng.unit_f64() - 0.5);
    for i in 0..n {
        m[(i, i)] = n as f64 + 1.0;
    }
    m
}

/// Random dense matrix with entries in `[-1, 1)`.
pub fn rnd_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = XorShift(seed | 1);
    Matrix::from_fn(n, n, |_, _| 2.0 * rng.unit_f64() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_dist_matrix(8, 1), random_dist_matrix(8, 1));
        assert_eq!(dd_matrix(8, 2), dd_matrix(8, 2));
        assert_ne!(rnd_matrix(8, 3), rnd_matrix(8, 4));
    }

    #[test]
    fn dist_matrix_structure() {
        let m = random_dist_matrix(16, 7);
        for i in 0..16 {
            assert_eq!(m[(i, i)], 0);
            for j in 0..16 {
                assert!(m[(i, j)] >= 0);
            }
        }
    }

    #[test]
    fn dd_matrix_is_dominant() {
        let m = dd_matrix(16, 9);
        for i in 0..16 {
            let off: f64 = (0..16).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)] > off);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = XorShift(42);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
