//! Timing and table-formatting helpers for the harness.

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Times a closure, keeping the best (minimum) of `reps` runs — the
/// standard way to suppress scheduling noise for deterministic kernels.
pub fn timed_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(reps >= 1);
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (r, t) = timed(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (out, best)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// `GFLOP/s` for an operation count and elapsed time.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e9
}

/// Formats seconds adaptively (`ms` below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Best-effort host description (model name and core count from
/// `/proc/cpuinfo`).
pub fn host_info() -> String {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    let model = cpuinfo
        .lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(str::trim)
        .unwrap_or("unknown CPU");
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    format!("{model} ({cores} hardware threads)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, t) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(t >= 0.0);
    }

    #[test]
    fn timed_best_returns_min() {
        let mut calls = 0;
        let (_, t) = timed_best(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn gflops_math() {
        assert!((gflops(2e9, 1.0) - 2.0).abs() < 1e-12);
        assert!((gflops(1e9, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
    }
}
