//! The bench-trajectory regression gate: `repro compare <baseline> [current]`.
//!
//! Diffs two directories of `BENCH_*.json` files field by field. Rows are
//! matched by their *identity fields* (strings, booleans used as labels,
//! and the well-known sweep parameters `n`, `threads`, `p`, `m_bytes`,
//! `b_bytes`); every other numeric field is a *metric* judged by a
//! per-metric [`Tolerance`] derived from its name:
//!
//! * timing fields (`*_s`, `seconds`, `speedup`, ...) are noisy —
//!   lower-is-better with a wide 50% band, and skipped entirely in
//!   `deterministic_only` mode (the CI gate, where baseline and current
//!   may run on different hardware);
//! * measured hardware counters (`hw_*`) are machine-specific — always
//!   informational, never gated;
//! * simulated miss counts, span/work counts and other integers are
//!   deterministic — they must match exactly.
//!
//! A *regression* is a gated metric outside its tolerance in the bad
//! direction, or a baseline row/file missing from the current run
//! (coverage loss). Extra files or rows in the current run are fine — new
//! experiments are not regressions. `repro compare` exits nonzero iff
//! regressions are found.

use gep_obs::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How a metric is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth beyond tolerance is a regression (times, misses).
    LowerIsBetter,
    /// Shrinking beyond tolerance is a regression (speedups).
    HigherIsBetter,
    /// Any drift beyond tolerance is a regression (deterministic counts).
    Exact,
}

/// Per-metric comparison policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Allowed relative drift (0.0 = exact, 0.5 = 50%).
    pub rel: f64,
    /// Which drift direction counts as a regression.
    pub direction: Direction,
    /// Noisy metrics are skipped in `deterministic_only` mode.
    pub noisy: bool,
    /// Informational metrics are reported but never gate the exit code.
    pub informational: bool,
}

/// Row-identity parameters: integer fields that position a row within a
/// sweep rather than measuring anything.
const PARAM_KEYS: &[&str] = &[
    "n",
    "threads",
    "p",
    "m_bytes",
    "b_bytes",
    "base",
    "processors",
];

/// Whether an integer field positions a row in a sweep (identity) rather
/// than measuring something. Shared with [`crate::trajectory`]'s
/// flattening so both views agree on row identity.
pub fn is_param_key(field: &str) -> bool {
    PARAM_KEYS.contains(&field)
}

/// The naming-convention classifier. Pure and unit-tested — this is the
/// whole tolerance policy.
pub fn tolerance_for(field: &str) -> Tolerance {
    if field.starts_with("hw_") {
        // Measured hardware counters vary across machines and with PMU
        // multiplexing; report drift, never gate on it.
        return Tolerance {
            rel: 1.0,
            direction: Direction::LowerIsBetter,
            noisy: true,
            informational: true,
        };
    }
    if field.ends_with("_ns") {
        // Nanosecond latency fields (serving p50/p99 and friends) are
        // pure wall-clock: report drift, never gate. Deterministic
        // serving facts (request counts, epochs) use other names and
        // stay exact.
        return Tolerance {
            rel: 1.0,
            direction: Direction::LowerIsBetter,
            noisy: true,
            informational: true,
        };
    }
    if field.ends_with("_share") {
        // Derived latency fractions (e.g. the loadgen's network+queue
        // share of client p99): ratios of wall-clock measurements, so
        // report drift, never gate.
        return Tolerance {
            rel: 1.0,
            direction: Direction::LowerIsBetter,
            noisy: true,
            informational: true,
        };
    }
    if field.ends_with("_s") || field == "seconds" || field.ends_with("gflops") {
        return Tolerance {
            rel: 0.5,
            direction: Direction::LowerIsBetter,
            noisy: true,
            informational: false,
        };
    }
    if field.contains("speedup") {
        return Tolerance {
            rel: 0.5,
            direction: Direction::HigherIsBetter,
            noisy: true,
            informational: false,
        };
    }
    if field.starts_with("ratio") || field.starts_with("fit") || field.ends_with("bound") {
        // Derived analytic quantities: deterministic inputs but float
        // arithmetic; a small band absorbs formatting/rounding drift.
        return Tolerance {
            rel: 0.1,
            direction: Direction::Exact,
            noisy: false,
            informational: false,
        };
    }
    // Everything else — simulated miss counts, span/work counts, flags
    // stored as 0/1 — is deterministic and must match exactly.
    Tolerance {
        rel: 0.0,
        direction: Direction::Exact,
        noisy: false,
        informational: false,
    }
}

/// One comparison finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// `<file> <row-key> <field>` locator.
    pub what: String,
    /// Human-readable delta.
    pub detail: String,
}

/// The full diff of two result sets.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Gated metrics outside tolerance in the bad direction, plus
    /// baseline rows/files missing from the current run.
    pub regressions: Vec<Finding>,
    /// Gated metrics outside tolerance in the *good* direction.
    pub improvements: Vec<Finding>,
    /// Drift in informational metrics (`hw_*`), never gating.
    pub notes: Vec<Finding>,
    /// Metric values actually compared.
    pub compared: usize,
}

impl CompareReport {
    /// True when the gate should fail the run.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Identity key of a row: every string field, plus the `PARAM_KEYS`
/// integers, in field order.
fn row_key(row: &Json) -> String {
    let Json::Obj(fields) = row else {
        return String::from("<non-object>");
    };
    let mut parts = Vec::new();
    for (k, v) in fields {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Int(i) if PARAM_KEYS.contains(&k.as_str()) => parts.push(format!("{k}={i}")),
            _ => {}
        }
    }
    if parts.is_empty() {
        String::from("<row>")
    } else {
        parts.join(",")
    }
}

fn metric_fields(row: &Json) -> Vec<(&str, f64)> {
    let Json::Obj(fields) = row else {
        return Vec::new();
    };
    fields
        .iter()
        .filter(|(k, v)| {
            !(matches!(v, Json::Str(_))
                || matches!(v, Json::Int(_)) && PARAM_KEYS.contains(&k.as_str()))
        })
        .filter_map(|(k, v)| {
            let num = match v {
                Json::Bool(b) => Some(*b as i64 as f64),
                other => other.as_gauge(),
            };
            num.map(|n| (k.as_str(), n))
        })
        .collect()
}

fn compare_metric(
    report: &mut CompareReport,
    what: String,
    field: &str,
    base: f64,
    cur: f64,
    deterministic_only: bool,
) {
    let tol = tolerance_for(field);
    if deterministic_only && tol.noisy && !tol.informational {
        return;
    }
    if !base.is_finite() || !cur.is_finite() {
        // NaN/Inf sentinels: only a change of class is reportable.
        if base.is_nan() != cur.is_nan() || (base.is_infinite() && base != cur) {
            report.regressions.push(Finding {
                what,
                detail: format!("{field}: {base} -> {cur} (non-finite class changed)"),
            });
        }
        return;
    }
    report.compared += 1;
    let scale = base.abs().max(1e-12);
    let drift = (cur - base) / scale;
    let (bad, good) = match tol.direction {
        Direction::LowerIsBetter => (drift > tol.rel, drift < -tol.rel),
        Direction::HigherIsBetter => (drift < -tol.rel, drift > tol.rel),
        Direction::Exact => (drift.abs() > tol.rel, false),
    };
    if !bad && !good {
        return;
    }
    let finding = Finding {
        what,
        detail: format!(
            "{field}: {base} -> {cur} ({:+.1}% vs ±{:.0}% tolerance)",
            drift * 100.0,
            tol.rel * 100.0
        ),
    };
    if tol.informational {
        report.notes.push(finding);
    } else if bad {
        report.regressions.push(finding);
    } else {
        report.improvements.push(finding);
    }
}

/// Compares two parsed `BENCH_*.json` documents (pure; unit-tested).
pub fn compare_docs(
    file: &str,
    baseline: &Json,
    current: &Json,
    deterministic_only: bool,
    report: &mut CompareReport,
) {
    let empty: [Json; 0] = [];
    let base_rows = baseline
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let cur_rows = current.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    let mut cur_by_key: BTreeMap<String, &Json> = BTreeMap::new();
    for row in cur_rows {
        cur_by_key.insert(row_key(row), row);
    }
    for row in base_rows {
        let key = row_key(row);
        let Some(cur_row) = cur_by_key.get(&key) else {
            report.regressions.push(Finding {
                what: format!("{file} [{key}]"),
                detail: "row present in baseline, missing from current run".into(),
            });
            continue;
        };
        let cur_metrics: BTreeMap<&str, f64> = metric_fields(cur_row).into_iter().collect();
        for (field, base_val) in metric_fields(row) {
            match cur_metrics.get(field) {
                Some(&cur_val) => compare_metric(
                    report,
                    format!("{file} [{key}]"),
                    field,
                    base_val,
                    cur_val,
                    deterministic_only,
                ),
                None => report.regressions.push(Finding {
                    what: format!("{file} [{key}]"),
                    detail: format!("field {field} present in baseline, missing now"),
                }),
            }
        }
    }
}

fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with("BENCH_") && f.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    gep_obs::bench::validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

/// Compares every baseline `BENCH_*.json` against its counterpart under
/// `current`. Errors only on unreadable/invalid input; regressions are
/// reported in the result, not as an `Err`.
pub fn compare_dirs(
    baseline: &Path,
    current: &Path,
    deterministic_only: bool,
) -> Result<CompareReport, String> {
    let base_paths = bench_files(baseline)?;
    if base_paths.is_empty() {
        return Err(format!(
            "no BENCH_*.json files in baseline {}",
            baseline.display()
        ));
    }
    let mut report = CompareReport::default();
    for base_path in &base_paths {
        let name = base_path
            .file_name()
            .and_then(|f| f.to_str())
            .expect("bench_files yields BENCH_*.json names");
        let base_doc = load(base_path)?;
        let cur_path = current.join(name);
        if !cur_path.exists() {
            report.regressions.push(Finding {
                what: name.to_string(),
                detail: "file present in baseline, missing from current run".into(),
            });
            continue;
        }
        compare_docs(
            name,
            &base_doc,
            &load(&cur_path)?,
            deterministic_only,
            &mut report,
        );
    }
    Ok(report)
}

/// Prints the report in the order the user scans it: regressions (the
/// reason the gate fails), then improvements, then informational notes.
pub fn print_report(report: &CompareReport) {
    for f in &report.regressions {
        println!("REGRESSION {}: {}", f.what, f.detail);
    }
    for f in &report.improvements {
        println!("improved   {}: {}", f.what, f.detail);
    }
    for f in &report.notes {
        println!("note       {}: {}", f.what, f.detail);
    }
    println!(
        "{} metric(s) compared: {} regression(s), {} improvement(s), {} note(s)",
        report.compared,
        report.regressions.len(),
        report.improvements.len(),
        report.notes.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_obs::BenchDoc;

    #[test]
    fn tolerances_follow_the_naming_convention() {
        let t = tolerance_for("gep_s");
        assert_eq!(t.direction, Direction::LowerIsBetter);
        assert!(t.noisy && !t.informational && t.rel >= 0.3);
        let t = tolerance_for("speedup");
        assert_eq!(t.direction, Direction::HigherIsBetter);
        let t = tolerance_for("hw_llc_misses");
        assert!(t.informational && t.noisy);
        let t = tolerance_for("igep_l2_misses");
        assert_eq!(
            t,
            Tolerance {
                rel: 0.0,
                direction: Direction::Exact,
                noisy: false,
                informational: false,
            }
        );
        assert_eq!(tolerance_for("ratio_sim_over_bound").rel, 0.1);
        // Serving latencies: wall-clock nanoseconds are informational;
        // serving counts/epochs fall through to exact.
        let t = tolerance_for("p99_ns");
        assert!(t.informational && t.noisy);
        assert_eq!(t.direction, Direction::LowerIsBetter);
        let t = tolerance_for("net_queue_share");
        assert!(t.informational && t.noisy, "latency shares never gate");
        assert_eq!(tolerance_for("epoch_regressions").rel, 0.0);
        assert!(!tolerance_for("requests").informational);
        assert!(
            !tolerance_for("slo_pass").informational,
            "SLO verdicts gate exactly"
        );
    }

    fn doc(rows: Vec<Vec<(&str, Json)>>) -> Json {
        let mut d = BenchDoc::new("t", "test", true);
        for r in rows {
            d.row(r);
        }
        d.to_json()
    }

    #[test]
    fn deterministic_drift_is_a_regression_and_timing_noise_is_not() {
        let base = doc(vec![vec![
            ("n", Json::Int(256)),
            ("igep_l2_misses", Json::Int(1000)),
            ("igep_s", Json::Float(1.0)),
        ]]);
        let cur = doc(vec![vec![
            ("n", Json::Int(256)),
            ("igep_l2_misses", Json::Int(1001)),
            ("igep_s", Json::Float(1.4)), // +40% < 50% band
        ]]);
        let mut report = CompareReport::default();
        compare_docs("BENCH_t.json", &base, &cur, false, &mut report);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].detail.contains("igep_l2_misses"));
        assert!(report.has_regressions());
    }

    #[test]
    fn timing_regressions_gate_only_past_the_wide_band() {
        let base = doc(vec![vec![
            ("n", Json::Int(64)),
            ("gep_s", Json::Float(1.0)),
        ]]);
        let slow = doc(vec![vec![
            ("n", Json::Int(64)),
            ("gep_s", Json::Float(1.6)),
        ]]);
        let mut report = CompareReport::default();
        compare_docs("f", &base, &slow, false, &mut report);
        assert_eq!(report.regressions.len(), 1);
        // The same drift is ignored in deterministic-only (CI) mode.
        let mut report = CompareReport::default();
        compare_docs("f", &base, &slow, true, &mut report);
        assert!(!report.has_regressions());
        assert_eq!(report.compared, 0);
    }

    #[test]
    fn faster_times_and_hw_drift_do_not_gate() {
        let base = doc(vec![vec![
            ("n", Json::Int(64)),
            ("gep_s", Json::Float(1.0)),
            ("hw_llc_misses", Json::Int(1_000_000)),
        ]]);
        let cur = doc(vec![vec![
            ("n", Json::Int(64)),
            ("gep_s", Json::Float(0.2)),
            ("hw_llc_misses", Json::Int(9_000_000)),
        ]]);
        let mut report = CompareReport::default();
        compare_docs("f", &base, &cur, false, &mut report);
        assert!(!report.has_regressions(), "{:?}", report.regressions);
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.notes.len(), 1, "hw drift is a note");
    }

    #[test]
    fn missing_rows_and_fields_are_coverage_regressions() {
        let base = doc(vec![
            vec![
                ("engine", Json::Str("igep".into())),
                ("misses", Json::Int(5)),
            ],
            vec![
                ("engine", Json::Str("gep".into())),
                ("misses", Json::Int(9)),
            ],
        ]);
        let cur = doc(vec![vec![("engine", Json::Str("igep".into()))]]);
        let mut report = CompareReport::default();
        compare_docs("f", &base, &cur, false, &mut report);
        // One missing row (gep), one missing field (igep.misses).
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        // Extra rows in current are NOT regressions.
        let mut report = CompareReport::default();
        compare_docs("f", &cur, &base, false, &mut report);
        assert!(!report.has_regressions());
    }

    #[test]
    fn rows_match_on_identity_not_position() {
        let base = doc(vec![
            vec![("n", Json::Int(128)), ("work", Json::Int(7))],
            vec![("n", Json::Int(256)), ("work", Json::Int(8))],
        ]);
        // Same rows, reversed order: no findings.
        let cur = doc(vec![
            vec![("n", Json::Int(256)), ("work", Json::Int(8))],
            vec![("n", Json::Int(128)), ("work", Json::Int(7))],
        ]);
        let mut report = CompareReport::default();
        compare_docs("f", &base, &cur, false, &mut report);
        assert!(!report.has_regressions());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn nonfinite_sentinels_compare_by_class() {
        let base = doc(vec![vec![
            ("n", Json::Int(8)),
            ("ratio_hw_over_bound", Json::from_f64(f64::NAN)),
        ]]);
        let same = base.clone();
        let mut report = CompareReport::default();
        compare_docs("f", &base, &same, false, &mut report);
        assert!(!report.has_regressions());
        let changed = doc(vec![vec![
            ("n", Json::Int(8)),
            ("ratio_hw_over_bound", Json::Float(2.0)),
        ]]);
        let mut report = CompareReport::default();
        compare_docs("f", &base, &changed, false, &mut report);
        assert_eq!(report.regressions.len(), 1);
    }

    #[test]
    fn compare_dirs_end_to_end() {
        let root = std::env::temp_dir().join("gep_bench_compare_test");
        let _ = std::fs::remove_dir_all(&root);
        let (b, c) = (root.join("base"), root.join("cur"));
        let mut base = BenchDoc::new("sweep", "t", true);
        base.row(vec![("n", Json::Int(4)), ("count", Json::Int(10))]);
        base.write_to(&b).unwrap();
        let mut cur = BenchDoc::new("sweep", "t", true);
        cur.row(vec![("n", Json::Int(4)), ("count", Json::Int(11))]);
        cur.write_to(&c).unwrap();
        let report = compare_dirs(&b, &c, false).expect("comparable");
        assert!(report.has_regressions());
        // Identical dirs: clean.
        let report = compare_dirs(&b, &b, false).unwrap();
        assert!(!report.has_regressions());
        // Empty baseline dir: an input error, not a clean pass.
        std::fs::create_dir_all(root.join("empty")).unwrap();
        assert!(compare_dirs(&root.join("empty"), &c, false).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
