//! # gep-bench — the reproduction harness
//!
//! One module per experiment in the paper's Section 4 (plus the
//! theoretical artefacts of Sections 2–3). The `repro` binary
//! (`cargo run -p gep-bench --release --bin repro -- <exp>`) prints each
//! table/figure as text rows; the Criterion benches in `benches/` provide
//! statistically sound timing for the in-core comparisons.
//!
//! | subcommand | paper artefact |
//! |---|---|
//! | `counterexample` | §2.2.1 — the 2×2 instance where I-GEP ≠ GEP |
//! | `table1` | Table 1 — operand states read by G and F |
//! | `table2` | Table 2 — machine inventory (+ this host) |
//! | `fig7a` | out-of-core I/O wait vs cache size `M` |
//! | `fig7b` | out-of-core I/O wait vs `M/B` |
//! | `fig8` | in-core Floyd–Warshall: GEP vs I-GEP |
//! | `fig9` | I-GEP vs C-GEP (both variants): time and L2 misses |
//! | `fig10` | Gaussian elimination: GEP vs I-GEP vs cache-aware baseline |
//! | `fig11` | matrix multiplication: GEP vs I-GEP vs baseline (+ misses) |
//! | `fig12` | multithreaded I-GEP speedup |
//! | `span` | §3 — span recurrences / predicted parallelism |
//! | `space` | §2.2.2 — reduced-space C-GEP live-snapshot peaks |
//! | `resume` | checkpoint/recovery determinism (see `docs/EXTMEM.md`) |
//! | `lemma31` | Lemma 3.1(b) — distributed-cache deterministic schedule |
//! | `tune` | `gep-kernels` autotuner — backend × base-size sweep, writes `tuning.json` |

pub mod compare;
pub mod crashcheck;
pub mod experiments;
pub mod jsonout;
pub mod trajectory;
pub mod util;
pub mod workloads;

pub use experiments::*;
