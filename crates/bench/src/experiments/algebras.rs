//! Algebra sweep: one I-GEP timing per registered update algebra.
//!
//! Not a paper figure — the paper fixes `(min, +)` and `(+, ×)`; this
//! sweep shows the same cache-oblivious engine carrying every algebra the
//! unified [`gep_core::algebra`] trait family registers, and quantifies
//! the headline win of the bitsliced GF(2) representation: packing 64×64
//! bits into a [`Gf2Block`] turns word-level XOR/AND into 64-way
//! bit-parallel updates, so bitsliced elimination should run roughly an
//! order of magnitude faster than scalar `bool` elimination on the *same
//! bit matrix*.
//!
//! Throughput is reported in million cell updates per second, where a
//! "cell" is one logical element of the algebra's problem (a bit for both
//! GF(2) rows), making the scalar-vs-bitsliced pair directly comparable.

use crate::util::{fmt_secs, print_table, timed_best};
use crate::workloads::random_dist_matrix;
use gep_apps::{ElimSpec, SemiringSpec};
use gep_core::algebra::{Gf2, Gf2Block, Gf2x64, GfMersenne31, MaxMinI64, OrAndBool};
use gep_core::igep_opt;
use gep_matrix::Matrix;

/// One (algebra, n) timing.
#[derive(Clone, Debug)]
pub struct AlgebraRow {
    /// Algebra name (`UpdateAlgebra::NAME`, plus a representation
    /// suffix for the two GF(2) rows).
    pub algebra: &'static str,
    /// `"closure"` or `"elimination"` — which GEP instance was timed.
    pub kind: &'static str,
    /// Logical problem side: elements for the scalar algebras, *bits*
    /// for both GF(2) rows.
    pub n: usize,
    /// Optimised sequential I-GEP seconds.
    pub seconds: f64,
    /// Million logical cell updates per second (`n³ / seconds / 10⁶`).
    pub mcups: f64,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Random `n × n` bit matrix with every leading principal minor equal
/// to 1 (a unit-lower × unit-upper product over GF(2)), so elimination
/// never meets a zero pivot. Shared by the scalar and bitsliced runs.
fn gf2_nonsingular_bits(n: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = Rng(seed | 1);
    // Row r of L: unit diagonal, random bits strictly below; row r of U:
    // unit diagonal, random bits strictly above. Dense bit product.
    let mut lo = vec![vec![false; n]; n];
    let mut up = vec![vec![false; n]; n];
    for r in 0..n {
        lo[r][r] = true;
        up[r][r] = true;
        for cell in lo[r].iter_mut().take(r) {
            *cell = rng.next() & 1 == 1;
        }
        for cell in up[r].iter_mut().skip(r + 1) {
            *cell = rng.next() & 1 == 1;
        }
    }
    let mut a = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = false;
            // L is unit lower triangular: k ≤ i contributes; U upper:
            // k ≤ j contributes.
            for (k, &l) in lo[i].iter().enumerate().take(i.min(j) + 1) {
                acc ^= l && up[k][j];
            }
            a[i][j] = acc;
        }
    }
    a
}

/// Packs an `n × n` bit matrix (`n` a multiple of 64) into 64×64 blocks.
fn pack_blocks(bits: &[Vec<bool>]) -> Matrix<Gf2Block> {
    let n = bits.len();
    let nb = n / 64;
    Matrix::from_fn(nb, nb, |bi, bj| {
        let mut blk = Gf2Block::ZERO;
        for r in 0..64 {
            for c in 0..64 {
                blk.set(r, c, bits[bi * 64 + r][bj * 64 + c]);
            }
        }
        blk
    })
}

/// Runs the sweep and prints the table. `sizes` are logical sides (bits
/// for GF(2)); every size must be a power of two ≥ 64.
pub fn algebras(sizes: &[usize], reps: usize) -> Vec<AlgebraRow> {
    let mut out = vec![];
    let mut table = vec![];
    let mut push = |row: AlgebraRow, table: &mut Vec<Vec<String>>| {
        table.push(vec![
            row.algebra.into(),
            row.kind.into(),
            row.n.to_string(),
            fmt_secs(row.seconds),
            format!("{:.0}", row.mcups),
        ]);
        out.push(row);
    };

    for &n in sizes {
        assert!(
            n.is_power_of_two() && n >= 64,
            "sizes must be powers of two >= 64"
        );
        let cells = n as f64 * n as f64 * n as f64;
        let mut rng = Rng(0xA16E_B6A5 ^ n as u64);

        // (min, +) closure — APSP (the Figure 8 workload).
        let fw = random_dist_matrix(n, 61608 + n as u64);
        let (_, secs) = timed_best(reps, || {
            let mut c = fw.clone();
            igep_opt(
                &SemiringSpec::<gep_core::algebra::MinPlusI64>::new(),
                &mut c,
                64,
            );
            c
        });
        push(
            AlgebraRow {
                algebra: "min-plus-i64",
                kind: "closure",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );

        // (max, min) closure — bottleneck / widest paths.
        let cap = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                i64::MAX
            } else if rng.next() % 4 == 0 {
                i64::MIN
            } else {
                (rng.next() % 1000) as i64
            }
        });
        let (_, secs) = timed_best(reps, || {
            let mut c = cap.clone();
            igep_opt(&SemiringSpec::<MaxMinI64>::new(), &mut c, 64);
            c
        });
        push(
            AlgebraRow {
                algebra: "max-min-i64",
                kind: "closure",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );

        // (∨, ∧) closure — reachability.
        let adj = Matrix::from_fn(n, n, |i, j| i == j || rng.next() % 8 == 0);
        let (_, secs) = timed_best(reps, || {
            let mut c = adj.clone();
            igep_opt(&SemiringSpec::<OrAndBool>::new(), &mut c, 64);
            c
        });
        push(
            AlgebraRow {
                algebra: "or-and-bool",
                kind: "closure",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );

        // GF(2) elimination, scalar vs bitsliced on the same bit matrix.
        let bits = gf2_nonsingular_bits(n, 0x6F2 + n as u64);
        let scalar = Matrix::from_fn(n, n, |i, j| bits[i][j]);
        let (_, secs) = timed_best(reps, || {
            let mut c = scalar.clone();
            igep_opt(&ElimSpec::<Gf2>::new(), &mut c, 64);
            c
        });
        push(
            AlgebraRow {
                algebra: "gf2-scalar",
                kind: "elimination",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );
        let blocks = pack_blocks(&bits);
        let nb = n / 64;
        let (_, secs) = timed_best(reps, || {
            let mut c = blocks.clone();
            igep_opt(&ElimSpec::<Gf2x64>::new(), &mut c, nb.min(8));
            c
        });
        push(
            AlgebraRow {
                algebra: "gf2-bitsliced",
                kind: "elimination",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );

        // GF(2³¹ − 1) elimination — Barrett-reduced prime field.
        let gfp = Matrix::from_fn(n, n, |i, j| {
            let x = rng.next() % 2_147_483_647;
            if i == j && x == 0 {
                1
            } else {
                x
            }
        });
        let (_, secs) = timed_best(reps, || {
            let mut c = gfp.clone();
            igep_opt(&ElimSpec::<GfMersenne31>::new(), &mut c, 64);
            c
        });
        push(
            AlgebraRow {
                algebra: "gf-mersenne31",
                kind: "elimination",
                n,
                seconds: secs,
                mcups: cells / secs / 1e6,
            },
            &mut table,
        );
    }

    print_table(
        "Algebra sweep: optimised I-GEP per update algebra",
        &["algebra", "instance", "n", "time", "Mupd/s"],
        &table,
    );
    for &n in sizes {
        if let Some(s) = bitslice_speedup(&out, n) {
            println!("GF(2) bitsliced vs scalar at n = {n}: {s:.1}x");
        }
    }
    println!("note: n counts logical cells (bits for the GF(2) rows), so the two");
    println!("      GF(2) rows eliminate the same bit matrix and compare directly.");
    out
}

/// Bitsliced-over-scalar GF(2) throughput ratio at size `n`, when both
/// rows are present.
pub fn bitslice_speedup(rows: &[AlgebraRow], n: usize) -> Option<f64> {
    let secs = |name: &str| {
        rows.iter()
            .find(|r| r.algebra == name && r.n == n)
            .map(|r| r.seconds)
    };
    Some(secs("gf2-scalar")? / secs("gf2-bitsliced")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf2_bit_construction_is_nonsingular_and_packs_consistently() {
        let n = 128;
        let bits = gf2_nonsingular_bits(n, 7);
        // Unit-triangular product ⇒ determinant 1: eliminate and demand a
        // full set of pivots.
        let mut m = bits.clone();
        for k in 0..n {
            assert!(m[k][k], "pivot {k} vanished");
            for i in k + 1..n {
                if m[i][k] {
                    let (top, bottom) = m.split_at_mut(i);
                    let (row_k, row_i) = (&top[k], &mut bottom[0]);
                    for j in 0..n {
                        row_i[j] ^= row_k[j];
                    }
                }
            }
        }
        let blocks = pack_blocks(&bits);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    blocks[(i / 64, j / 64)].get(i % 64, j % 64),
                    bits[i][j],
                    "bit ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sweep_runs_and_reports_speedup_at_minimum_size() {
        let rows = algebras(&[64], 1);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.seconds > 0.0 && r.mcups > 0.0));
        assert!(bitslice_speedup(&rows, 64).is_some());
    }
}
