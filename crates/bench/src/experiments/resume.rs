//! Resume experiment: deterministic metrics of the checkpoint/recovery
//! subsystem (`gep_extmem::checkpoint`, see `docs/EXTMEM.md`).
//!
//! Three scenarios per (app, n, base, snapshot interval) configuration,
//! every metric a pure function of the configuration (no timing, no
//! host dependence — this file belongs in the CI deterministic baseline):
//!
//! * `clean` — an uninterrupted checkpointed solve: schedule length,
//!   snapshots taken, WAL traffic, checkpoint bytes at rest.
//! * `crash-mid` — the run is killed at a fixed fraction of its stable
//!   writes, then resumed: how much work the checkpoint saved
//!   (`resumed_cursor`) vs re-executed, and whether the result is
//!   bit-identical to the uninterrupted run.
//! * `corrupt-tip` — the newest snapshot of a completed run is silently
//!   corrupted; recovery must detect it by checksum and fall back to the
//!   previous generation, still converging bit-identically.

use crate::crashcheck::bits_eq;
use crate::util::print_table;
use gep_apps::{FwSpec, GaussianSpec};
use gep_core::GepSpec;
use gep_extmem::{
    fault_clock, run_checkpointed, run_to_crash, CkptConfig, CkptStats, CkptStore, DiskProfile,
    ElemBytes, FaultPlan, MemStore,
};
use gep_matrix::Matrix;

/// One measured scenario.
#[derive(Clone, Debug)]
pub struct ResumeRow {
    /// Application ("fw" = Floyd–Warshall/i64, "ge" = Gaussian/f64).
    pub app: &'static str,
    /// Scenario name (see the module docs).
    pub scenario: &'static str,
    /// Matrix dimension.
    pub n: usize,
    /// I-GEP base-case size.
    pub base: usize,
    /// Leaf steps between snapshots.
    pub snapshot_every: u64,
    /// Checkpoint stats of the (final, converging) attempt.
    pub stats: CkptStats,
    /// Whether the scenario's result matched the uninterrupted run
    /// bit for bit.
    pub bit_identical: bool,
}

fn cfg_for(base: usize, snapshot_every: u64) -> CkptConfig {
    CkptConfig {
        m_bytes: 2048,
        b_bytes: 256,
        base,
        snapshot_every,
        profile: DiskProfile::fujitsu_map3735nc(),
    }
}

/// Highest snapshot generation currently in the store (`snap-<g>` names
/// sort lexicographically, so parse rather than take the last).
fn latest_snap_gen(store: &MemStore) -> u64 {
    store
        .list()
        .iter()
        .filter_map(|name| name.strip_prefix("snap-")?.parse().ok())
        .max()
        .expect("a completed run has at least snap-0")
}

fn scenarios<S, T>(
    spec: &S,
    input: &Matrix<T>,
    app: &'static str,
    base: usize,
    every: u64,
    rows: &mut Vec<ResumeRow>,
) where
    S: GepSpec<Elem = T>,
    T: ElemBytes,
{
    let row = |scenario, stats, bit_identical| ResumeRow {
        app,
        scenario,
        n: input.n(),
        base,
        snapshot_every: every,
        stats,
        bit_identical,
    };
    let cfg = cfg_for(base, every);

    // `clean`: the uninterrupted baseline, which also measures the
    // stable-write count the crash scenario needs.
    let clock = fault_clock(FaultPlan::default());
    let mut store = MemStore::new(Some(clock.clone()));
    let (want, clean_stats) = run_checkpointed(spec, input, &cfg, &mut store, Some(clock.clone()));
    let writes = clock.borrow().writes();
    rows.push(row("clean", clean_stats, true));

    // `crash-mid`: kill at 60% of the stable writes, resume once.
    let at = (writes * 3 / 5).max(1);
    let clock = fault_clock(FaultPlan {
        crash_at_write: Some(at),
        torn_write: true,
        ..Default::default()
    });
    let mut crash_store = MemStore::new(Some(clock.clone()));
    run_to_crash(std::panic::AssertUnwindSafe(|| {
        run_checkpointed(spec, input, &cfg, &mut crash_store, Some(clock.clone()))
    }))
    .expect_err("the injected crash point is below the run's write count");
    let (resumed, stats) = run_checkpointed(spec, input, &cfg, &mut crash_store, Some(clock));
    rows.push(row("crash-mid", stats, bits_eq(&resumed, &want)));

    // `corrupt-tip`: flip a byte inside the newest snapshot of the
    // completed `clean` store; recovery must fall back, not go wrong.
    let tip = format!("snap-{}", latest_snap_gen(&store));
    let mid = store.read(&tip).expect("tip snapshot exists").len() / 2;
    store.corrupt(&tip, mid);
    let (recovered, stats) = run_checkpointed(spec, input, &cfg, &mut store, None);
    rows.push(row("corrupt-tip", stats, bits_eq(&recovered, &want)));
}

/// Deterministic diagonally dominant f64 instance (Gaussian elimination
/// has no pivoting, so dominance keeps it well-posed).
fn ge_input(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 2.0
        } else {
            ((i * 31 + j * 17 + 3) % 13) as f64 / 7.0 - 0.9
        }
    })
}

/// Runs every scenario over the configuration sweep and prints the table.
pub fn resume(quick: bool) -> Vec<ResumeRow> {
    let configs: &[(usize, usize, u64)] = if quick {
        &[(16, 2, 8)]
    } else {
        &[(16, 2, 8), (32, 2, 16)]
    };
    let mut rows = Vec::new();
    for &(n, base, every) in configs {
        let fw = crate::workloads::random_dist_matrix(n, 71001 + n as u64);
        scenarios(&FwSpec::<i64>::new(), &fw, "fw", base, every, &mut rows);
        scenarios(&GaussianSpec, &ge_input(n), "ge", base, every, &mut rows);
    }
    print_table(
        "Resume: checkpointed out-of-core GEP — recovery determinism",
        &[
            "app",
            "scenario",
            "n",
            "base",
            "every",
            "steps",
            "resumed@",
            "executed",
            "snaps",
            "wal recs",
            "ckpt bytes",
            "fallbacks",
            "bit-identical",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    r.scenario.to_string(),
                    r.n.to_string(),
                    r.base.to_string(),
                    r.snapshot_every.to_string(),
                    r.stats.total_steps.to_string(),
                    r.stats.start_cursor.to_string(),
                    r.stats.executed_steps.to_string(),
                    r.stats.snapshots_written.to_string(),
                    r.stats.wal_records.to_string(),
                    r.stats.store_bytes.to_string(),
                    r.stats.recovery_fallbacks.to_string(),
                    if r.bit_identical { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_recovers_bit_identically() {
        gep_extmem::silence_injected_crash_reports();
        let rows = resume(true);
        assert_eq!(rows.len(), 6, "3 scenarios x 2 apps in quick mode");
        for r in &rows {
            assert!(r.bit_identical, "{} {} diverged", r.app, r.scenario);
        }
        // The crash actually saved work: the resume started mid-schedule.
        let crash = rows
            .iter()
            .find(|r| r.scenario == "crash-mid" && r.app == "fw")
            .unwrap();
        assert!(crash.stats.start_cursor > 0, "resume skipped no work");
        assert!(crash.stats.executed_steps < crash.stats.total_steps);
        // The corrupted tip was detected and discarded, not trusted.
        for r in rows.iter().filter(|r| r.scenario == "corrupt-tip") {
            assert_eq!(r.stats.recovery_fallbacks, 1, "{}", r.app);
        }
    }

    #[test]
    fn metrics_are_deterministic_across_runs() {
        gep_extmem::silence_injected_crash_reports();
        let a = resume(true);
        let b = resume(true);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats, "{} {}", x.app, x.scenario);
        }
    }
}
