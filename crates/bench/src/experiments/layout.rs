//! §4.2 layout study: the bit-interleaved (Morton-tiled) layout vs plain
//! row-major, measured in simulated TLB and L2 misses for the same I-GEP
//! execution.
//!
//! The paper adopts this layout (tiles of base-case size, row-major
//! inside, Morton order between) "for reduced TLB misses" and charges the
//! conversion cost to its reported times — the conversion cost itself is
//! timed by the `layout_ablation` Criterion bench.

use crate::util::print_table;
use crate::workloads::random_dist_matrix;
use gep_apps::floyd_warshall::FwSpec;
use gep_cachesim::{AddressSpace, CacheModel, SharedCache, Tlb, TrackedMatrix};
use gep_core::igep;
use gep_matrix::{Layout, MortonTiled, RowMajor};
use std::cell::RefCell;
use std::rc::Rc;

/// Misses of one I-GEP run under a layout: `(tlb, l2)`.
fn run_layout<L: Layout + Copy>(n: usize, layout: L, tlb_entries: usize) -> (u64, u64) {
    let spec = FwSpec::<i64>::new();
    let input = random_dist_matrix(n, 0x1A07);

    let tlb: SharedCache<Tlb> = Rc::new(RefCell::new(Tlb::new(tlb_entries, 4096)));
    let mut space = AddressSpace::new();
    let mut t = TrackedMatrix::with_layout(input.clone(), tlb.clone(), &mut space, layout);
    igep(&spec, &mut t, 1);
    let tlb_misses = tlb.borrow().stats().misses;

    let xeon = gep_cachesim::table2_machines()[0];
    let l2: SharedCache<gep_cachesim::Hierarchy> = Rc::new(RefCell::new(xeon.hierarchy()));
    let mut space = AddressSpace::new();
    let mut t = TrackedMatrix::with_layout(input, l2.clone(), &mut space, layout);
    igep(&spec, &mut t, 1);
    let l2_misses = l2.borrow().l2_stats().misses;

    (tlb_misses, l2_misses)
}

/// Runs the layout comparison; returns
/// `(n, rowmajor (tlb, l2), morton (tlb, l2))` rows.
#[allow(clippy::type_complexity)]
pub fn layout_study(sizes: &[usize], tile: usize) -> Vec<(usize, (u64, u64), (u64, u64))> {
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let rm = run_layout(n, RowMajor, 16);
        let mt = run_layout(n, MortonTiled { tile: tile.min(n) }, 16);
        rows.push(vec![
            n.to_string(),
            format!("{}/{}", rm.0, rm.1),
            format!("{}/{}", mt.0, mt.1),
            format!("{:.2}x", rm.0 as f64 / mt.0.max(1) as f64),
        ]);
        out.push((n, rm, mt));
    }
    print_table(
        &format!(
            "Section 4.2 layout study: I-GEP TLB/L2 misses, row-major vs Morton-tiled (tile {tile})"
        ),
        &["n", "row-major TLB/L2", "Morton-tiled TLB/L2", "TLB gain"],
        &rows,
    );
    println!("paper: the bit-interleaved layout is used for reduced TLB misses.");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_layout_reduces_tlb_misses() {
        // 256x256 i64 = 512 KiB = 128 pages >> 16-entry TLB reach.
        let rows = layout_study(&[256], 64);
        let (_, rm, mt) = rows[0];
        assert!(
            mt.0 * 2 < rm.0,
            "Morton-tiled TLB misses {} should be well below row-major {}",
            mt.0,
            rm.0
        );
    }
}
