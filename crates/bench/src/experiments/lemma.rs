//! Lemma 3.1(b): the deterministic distributed-cache schedule.
//!
//! Each subproblem of size `(n/√p) × (n/√p)` executes entirely on one
//! processor with a private cache of size `M`. We simulate exactly that:
//! the top levels of I-GEP's recursion are driven by this harness, and
//! every size-`n/√p` subproblem is assigned round-robin to one of `p`
//! private ideal caches. The lemma's bound:
//!
//! ```text
//! Q_p = O( n³/(B√M) + √p · n²/B )
//! ```

use crate::util::print_table;
use crate::workloads::random_dist_matrix;
use gep_apps::floyd_warshall::FwSpec;
use gep_cachesim::{CacheModel, IdealCache};
use gep_core::{igep_box, CellStore};
use gep_matrix::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// A tracked store whose accesses go to the *currently active* private
/// cache of a simulated processor.
struct MultiCacheStore {
    data: Matrix<i64>,
    caches: Rc<RefCell<Vec<IdealCache>>>,
    active: Rc<std::cell::Cell<usize>>,
}

impl CellStore<i64> for MultiCacheStore {
    fn n(&self) -> usize {
        self.data.n()
    }
    fn read(&mut self, i: usize, j: usize) -> i64 {
        let addr = (i * self.data.n() + j) as u64 * 8;
        self.caches.borrow_mut()[self.active.get()].access(addr);
        self.data.get(i, j)
    }
    fn write(&mut self, i: usize, j: usize, v: i64) {
        let addr = (i * self.data.n() + j) as u64 * 8;
        self.caches.borrow_mut()[self.active.get()].access(addr);
        self.data.set(i, j, v);
    }
}

/// Runs I-GEP under the deterministic schedule with `p` private caches of
/// `m_bytes` each; returns `(total_misses, result)`.
///
/// `p` must be a perfect square dividing `n²` (the lemma's `√p` grid).
pub fn distributed_run(n: usize, p: usize, m_bytes: u64, b_bytes: u64) -> (u64, Matrix<i64>) {
    let rp = (p as f64).sqrt().round() as usize;
    assert_eq!(rp * rp, p, "p must be a perfect square");
    assert!(n % rp == 0 && (n / rp).is_power_of_two());
    let spec = FwSpec::<i64>::new();
    let caches = Rc::new(RefCell::new(
        (0..p)
            .map(|_| IdealCache::new(m_bytes, b_bytes))
            .collect::<Vec<_>>(),
    ));
    let active = Rc::new(std::cell::Cell::new(0usize));
    let mut store = MultiCacheStore {
        data: random_dist_matrix(n, 0x1E44),
        caches: caches.clone(),
        active: active.clone(),
    };
    let sub = n / rp;
    let mut next = 0usize;
    // Drive the recursion down to side `sub`, pinning each subproblem to a
    // processor (round-robin — the lemma only needs *some* deterministic
    // assignment executing each subproblem on one processor).
    drive(&spec, &mut store, 0, 0, 0, n, sub, &mut |_i, _j, _k| {
        active.set(next % p);
        next += 1;
    });
    let total = caches.borrow().iter().map(|c| c.stats().misses).sum();
    (total, store.data)
}

/// Replicates F's recursion above the `sub` granularity and calls
/// `igep_box` at the leaves after invoking `assign`.
#[allow(clippy::too_many_arguments)]
fn drive<S, St>(
    spec: &S,
    c: &mut St,
    i0: usize,
    j0: usize,
    k0: usize,
    s: usize,
    sub: usize,
    assign: &mut impl FnMut(usize, usize, usize),
) where
    S: gep_core::GepSpec,
    St: CellStore<S::Elem>,
{
    if s <= sub {
        assign(i0, j0, k0);
        igep_box(spec, c, i0, j0, k0, s, 1);
        return;
    }
    let h = s / 2;
    drive(spec, c, i0, j0, k0, h, sub, assign);
    drive(spec, c, i0, j0 + h, k0, h, sub, assign);
    drive(spec, c, i0 + h, j0, k0, h, sub, assign);
    drive(spec, c, i0 + h, j0 + h, k0, h, sub, assign);
    drive(spec, c, i0 + h, j0 + h, k0 + h, h, sub, assign);
    drive(spec, c, i0 + h, j0, k0 + h, h, sub, assign);
    drive(spec, c, i0, j0 + h, k0 + h, h, sub, assign);
    drive(spec, c, i0, j0, k0 + h, h, sub, assign);
}

/// The Lemma 3.1(b) report: measured `Q_p` vs the analytic bound for a
/// few processor counts.
pub fn lemma31(n: usize, m_bytes: u64, b_bytes: u64) -> Vec<(usize, u64)> {
    let mut rows = vec![];
    let mut out = vec![];
    let (q1, reference) = distributed_run(n, 1, m_bytes, b_bytes);
    for p in [1usize, 4, 16] {
        let (qp, result) = distributed_run(n, p, m_bytes, b_bytes);
        assert_eq!(result, reference, "schedule must not change the output");
        let b_elems = b_bytes as f64 / 8.0;
        let bound_extra = (p as f64).sqrt() * (n * n) as f64 / b_elems;
        rows.push(vec![
            p.to_string(),
            qp.to_string(),
            format!("{:.2}", qp as f64 / q1 as f64),
            format!("{:.0}", bound_extra),
        ]);
        out.push((p, qp));
    }
    print_table(
        &format!(
            "Lemma 3.1(b): deterministic distributed-cache schedule, n={n}, M={} KiB, B={b_bytes} B",
            m_bytes / 1024
        ),
        &["p", "Q_p (total misses)", "Q_p / Q_1", "√p·n²/B (allowed extra)"],
        &rows,
    );
    println!("bound: Q_p = O(n³/(B√M) + √p·n²/B); Q_p/Q_1 should stay within the additive term.");
    out
}

// ---------------------------------------------------------------------
// Lemma 3.2: shared caches.
// ---------------------------------------------------------------------

/// A store that computes normally while logging the byte address of every
/// access (row-major, 8-byte elements).
struct TraceStore {
    data: Matrix<i64>,
    trace: Vec<u64>,
}

impl CellStore<i64> for TraceStore {
    fn n(&self) -> usize {
        self.data.n()
    }
    fn read(&mut self, i: usize, j: usize) -> i64 {
        self.trace.push((i * self.data.n() + j) as u64 * 8);
        self.data.get(i, j)
    }
    fn write(&mut self, i: usize, j: usize, v: i64) {
        self.trace.push((i * self.data.n() + j) as u64 * 8);
        self.data.set(i, j, v);
    }
}

/// Round-robin interleaving of two access streams — the shared-cache view
/// of two processors executing independent join branches in lockstep.
fn interleave(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter();
    let mut ib = b.into_iter();
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => break,
            (x, y) => {
                out.extend(x);
                out.extend(y);
            }
        }
    }
    out
}

/// Builds the access trace of the Lemma 3.2(b) *hybrid depth-first*
/// schedule for `p = 2`: the recursion is walked in plain 1DF order, but
/// inside every supernode — a subproblem on an `r × r` submatrix with
/// `√p ≤ r < 2√p` — the two parallel branches (`F(X₁₂) ∥ F(X₂₁)`) execute
/// in lockstep, interleaving their accesses. Values are computed
/// sequentially (legal — interleaved branches are independent); only the
/// *address stream* reflects the parallel schedule. `r = 0` yields the
/// plain sequential trace.
fn schedule_trace(
    store: &mut TraceStore,
    i0: usize,
    j0: usize,
    k0: usize,
    s: usize,
    r: usize,
) -> Vec<u64> {
    let spec = FwSpec::<i64>::new();
    if s == 1 {
        store.trace.clear();
        igep_box(&spec, store, i0, j0, k0, 1, 1);
        return std::mem::take(&mut store.trace);
    }
    let h = s / 2;
    // PDF interleaving applies only inside supernodes (s <= r).
    let lockstep = s <= r;
    let mut out = schedule_trace(store, i0, j0, k0, h, r);
    let t12 = schedule_trace(store, i0, j0 + h, k0, h, r);
    let t21 = schedule_trace(store, i0 + h, j0, k0, h, r);
    out.extend(if lockstep {
        interleave(t12, t21)
    } else {
        let mut v = t12;
        v.extend(t21);
        v
    });
    out.extend(schedule_trace(store, i0 + h, j0 + h, k0, h, r));
    out.extend(schedule_trace(store, i0 + h, j0 + h, k0 + h, h, r));
    let t21b = schedule_trace(store, i0 + h, j0, k0 + h, h, r);
    let t12b = schedule_trace(store, i0, j0 + h, k0 + h, h, r);
    out.extend(if lockstep {
        interleave(t21b, t12b)
    } else {
        let mut v = t21b;
        v.extend(t12b);
        v
    });
    out.extend(schedule_trace(store, i0, j0, k0 + h, h, r));
    out
}

fn misses_of(trace: &[u64], m_bytes: u64, b_bytes: u64) -> u64 {
    let mut cache = IdealCache::new(m_bytes, b_bytes);
    for &a in trace {
        cache.access(a);
    }
    cache.stats().misses
}

/// Lemma 3.2(b)(i) illustration: with `p = 2` processors sharing one
/// cache, `Q_p ≤ Q_1` once the shared cache is enlarged by `16·p^{3/2}`
/// blocks. Returns `(q1, q2_same_m, q2_enlarged)`.
pub fn lemma32(n: usize, m1_bytes: u64, b_bytes: u64) -> (u64, u64, u64) {
    let input = random_dist_matrix(n, 0x1E32);
    let mut store = TraceStore {
        data: input.clone(),
        trace: vec![],
    };
    let seq = schedule_trace(&mut store, 0, 0, 0, n, 0);
    // Confirm the run computed the right thing while tracing.
    let mut oracle = input.clone();
    gep_core::igep(&FwSpec::<i64>::new(), &mut oracle, 1);
    assert_eq!(store.data, oracle);

    // Supernode side for p = 2: √2 ≤ r < 2√2 ⇒ r = 2.
    let mut store = TraceStore {
        data: input,
        trace: vec![],
    };
    let par = schedule_trace(&mut store, 0, 0, 0, n, 2);
    assert_eq!(seq.len(), par.len());

    let q1 = misses_of(&seq, m1_bytes, b_bytes);
    let q2_same = misses_of(&par, m1_bytes, b_bytes);
    let extra_blocks = (16.0 * 2f64.powf(1.5)).ceil() as u64; // 16·p^{3/2}
    let q2_big = misses_of(&par, m1_bytes + extra_blocks * b_bytes, b_bytes);
    print_table(
        &format!(
            "Lemma 3.2(b): 2 processors sharing one cache, n={n}, M₁={} KiB, B={b_bytes} B",
            m1_bytes / 1024
        ),
        &["schedule", "cache", "misses"],
        &[
            vec!["sequential (Q₁)".into(), "M₁".into(), q1.to_string()],
            vec!["hybrid DF, p=2".into(), "M₁".into(), q2_same.to_string()],
            vec![
                "hybrid DF, p=2".into(),
                format!("M₁ + 16·p^1.5 blocks (+{extra_blocks})"),
                q2_big.to_string(),
            ],
        ],
    );
    println!("lemma: Q_p ≤ Q₁ once M_p ≥ M₁ + 16·p^(3/2) blocks.");
    (q1, q2_same, q2_big)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_cachesim::{AddressSpace, TrackedMatrix};

    #[test]
    fn lemma32_enlarged_shared_cache_restores_q1() {
        let (q1, _q2_same, q2_big) = lemma32(32, 2 * 1024, 64);
        assert!(
            q2_big <= q1,
            "enlarged shared cache should not miss more: q2={q2_big} q1={q1}"
        );
    }

    #[test]
    fn schedule_preserves_results_and_bound_shape() {
        let n = 64;
        let (q1, r1) = distributed_run(n, 1, 8 * 1024, 128);
        let (q4, r4) = distributed_run(n, 4, 8 * 1024, 128);
        assert_eq!(r1, r4);
        // Q_p exceeds Q_1 by at most the lemma's additive term (with a
        // generous constant).
        let extra_allowed = 8.0 * 2.0 * (n * n) as f64 / (128.0 / 8.0);
        assert!(
            (q4 as f64) <= q1 as f64 + extra_allowed,
            "q4={q4} q1={q1} allowed extra={extra_allowed}"
        );
    }

    #[test]
    fn single_processor_matches_plain_tracked_igep() {
        let n = 32;
        let (q1, result) = distributed_run(n, 1, 4 * 1024, 128);
        // Compare against the ordinary tracked run.
        let cache = Rc::new(RefCell::new(IdealCache::new(4 * 1024, 128)));
        let mut space = AddressSpace::new();
        let mut t = TrackedMatrix::new(random_dist_matrix(n, 0x1E44), cache.clone(), &mut space);
        gep_core::igep(&FwSpec::<i64>::new(), &mut t, 1);
        assert_eq!(q1, cache.borrow().stats().misses);
        assert_eq!(result, t.into_inner());
    }
}
