//! Figure 12: multithreaded I-GEP speedup for matrix multiplication,
//! Gaussian elimination and Floyd–Warshall as the thread count grows.
//!
//! Paper (8-way Opteron 850, n = 5000): speedups at 8 threads are
//! MM 6.0×, FW 5.73×, GE 5.33× — MM parallelises best, as its span is
//! `O(n)` vs `O(n log² n)`.
//!
//! Measured wall-clock speedup is bounded by the host's core count (this
//! is recorded next to the results); the work/span *predicted* speedups
//! from `gep-parallel::span` are printed alongside so the schedule's
//! parallelism is visible even on small hosts.

use crate::util::{fmt_secs, print_table, timed_best};
use crate::workloads::{dd_matrix, random_dist_matrix, rnd_matrix};
use gep_apps::floyd_warshall::FwSpec;
use gep_apps::GaussianSpec;
use gep_core::algebra::PlusTimesF64;
use gep_matrix::Matrix;
use gep_parallel::{igep_parallel, matmul_parallel, span, with_threads};

/// Speedup rows for one application.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Application name.
    pub app: &'static str,
    /// `(threads, seconds, speedup)` per thread count.
    pub points: Vec<(usize, f64, f64)>,
}

/// Runs the thread sweep for the three applications at side `n`.
pub fn fig12(n: usize, threads: &[usize], reps: usize) -> Vec<ScalingRow> {
    let base = 64;
    let fw_input = random_dist_matrix(n, 61612);
    let ge_input = dd_matrix(n, 61612);
    let mm_a = rnd_matrix(n, 1);
    let mm_b = rnd_matrix(n, 2);

    let mut apps: Vec<ScalingRow> = vec![];
    for app in ["MM", "GE", "FW"] {
        let mut points = vec![];
        let mut t1 = 0.0;
        for &p in threads {
            let (_, secs) = match app {
                "MM" => timed_best(reps, || {
                    with_threads(p, || {
                        let mut c = Matrix::square(n, 0.0);
                        matmul_parallel::<PlusTimesF64>(&mut c, &mm_a, &mm_b, base);
                    })
                }),
                "GE" => timed_best(reps, || {
                    with_threads(p, || {
                        let mut c = ge_input.clone();
                        igep_parallel(&GaussianSpec, &mut c, base);
                    })
                }),
                _ => timed_best(reps, || {
                    with_threads(p, || {
                        let mut c = fw_input.clone();
                        igep_parallel(&FwSpec::<i64>::new(), &mut c, base);
                    })
                }),
            };
            if p == threads[0] {
                t1 = secs;
            }
            points.push((p, secs, t1 / secs));
        }
        apps.push(ScalingRow { app, points });
    }

    let mut rows = vec![];
    for row in &apps {
        for &(p, secs, sp) in &row.points {
            rows.push(vec![
                row.app.to_string(),
                p.to_string(),
                fmt_secs(secs),
                format!("{sp:.2}x"),
                // Predicted greedy-bound speedup for this schedule.
                format!("{:.2}x", predicted_speedup(row.app, n, p)),
            ]);
        }
    }
    print_table(
        &format!(
            "Figure 12: multithreaded I-GEP, n={n} (host: {})",
            crate::util::host_info()
        ),
        &[
            "app",
            "threads",
            "time",
            "measured speedup",
            "predicted speedup (T₁/p+T∞)",
        ],
        &rows,
    );
    println!("paper (8 threads, n=5000): MM 6.0x, FW 5.73x, GE 5.33x.");
    apps
}

/// Greedy-bound speedup prediction per application: MM uses the `O(n)`
/// span, FW/GE the full `O(n log² n)` A/B/C/D span.
pub fn predicted_speedup(app: &str, n: usize, p: usize) -> f64 {
    let work = span::work_full_sigma(n) as f64;
    let sp = match app {
        "MM" => span::span_mm(n) as f64,
        _ => span::span_full(n) as f64,
    };
    (work / 1.0 + sp) / (work / p as f64 + sp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_complete_and_match() {
        // Smoke: one small sweep; correctness of parallel engines is
        // covered in gep-parallel's own tests.
        let rows = fig12(128, &[1, 2], 1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.points.len(), 2);
            assert!(r.points.iter().all(|&(_, s, _)| s > 0.0));
        }
    }

    #[test]
    fn predicted_ordering_mm_best() {
        let n = 4096;
        let mm = predicted_speedup("MM", n, 8);
        let fw = predicted_speedup("FW", n, 8);
        assert!(mm >= fw, "MM has the larger predicted speedup");
        assert!(mm > 6.0, "MM prediction near-linear: {mm:.2}");
    }
}
