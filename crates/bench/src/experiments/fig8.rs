//! Figure 8: in-core Floyd–Warshall — GEP vs I-GEP wall time.
//!
//! Paper shape: optimised I-GEP runs ~4–5× faster than (reasonably
//! optimised) iterative GEP, and the gap holds or widens with `n`.

use crate::util::{fmt_secs, print_table, timed_best};
use crate::workloads::random_dist_matrix;
use gep_apps::floyd_warshall::FwSpec;
use gep_cachesim::{AddressSpace, TrackedMatrix};
use gep_core::{gep_iterative, igep, igep_opt};
use std::cell::RefCell;
use std::rc::Rc;

/// One (n, engine) timing.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Matrix side.
    pub n: usize,
    /// Iterative GEP seconds.
    pub gep_s: f64,
    /// Optimised I-GEP seconds (base 64).
    pub igep_s: f64,
}

impl Fig8Row {
    /// GEP time / I-GEP time.
    pub fn speedup(&self) -> f64 {
        self.gep_s / self.igep_s
    }
}

/// Runs the sweep and prints the table.
pub fn fig8(sizes: &[usize], reps: usize) -> Vec<Fig8Row> {
    let spec = FwSpec::<i64>::new();
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let input = random_dist_matrix(n, 61608 + n as u64);
        let (_, gep_s) = timed_best(reps, || {
            let mut c = input.clone();
            gep_iterative(&spec, &mut c);
            c
        });
        let (_, igep_s) = timed_best(reps, || {
            let mut c = input.clone();
            igep_opt(&spec, &mut c, 64);
            c
        });
        let row = Fig8Row { n, gep_s, igep_s };
        rows.push(vec![
            n.to_string(),
            fmt_secs(gep_s),
            fmt_secs(igep_s),
            format!("{:.2}x", row.speedup()),
            format!("{:.0}", n as f64 * n as f64 * n as f64 / igep_s / 1e6),
        ]);
        out.push(row);
    }
    print_table(
        "Figure 8: in-core Floyd–Warshall (i64 min-plus)",
        &["n", "GEP", "I-GEP (base 64)", "speedup", "I-GEP Mupd/s"],
        &rows,
    );
    println!("paper: I-GEP ≈ 4–5x faster than GEP on Xeon/Opteron.");
    println!("note: wall-clock gaps shrink on hosts whose last-level cache dwarfs the");
    println!("      paper's 512 KB–1 MB L2; the simulated-Xeon miss counts below show");
    println!("      the machine-matched effect.");
    out
}

/// L2 miss counts of GEP vs I-GEP on the simulated Intel Xeon (the
/// Figure 8 machine): `(n, gep_l2, igep_l2)`.
pub fn fig8_misses(sizes: &[usize]) -> Vec<(usize, u64, u64)> {
    let spec = FwSpec::<i64>::new();
    let xeon = gep_cachesim::table2_machines()[0];
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let input = random_dist_matrix(n, 61608);
        let run = |use_igep: bool| {
            let cache = Rc::new(RefCell::new(xeon.hierarchy()));
            let mut space = AddressSpace::new();
            let mut t = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
            if use_igep {
                igep(&spec, &mut t, 1);
            } else {
                gep_iterative(&spec, &mut t);
            }
            let h = cache.borrow();
            h.l2_stats().misses
        };
        let g = run(false);
        let f = run(true);
        rows.push(vec![
            n.to_string(),
            g.to_string(),
            f.to_string(),
            format!("{:.1}x", g as f64 / f.max(1) as f64),
        ]);
        out.push((n, g, f));
    }
    print_table(
        "Figure 8 (cache view): L2 misses on the simulated Intel Xeon",
        &["n", "GEP L2 misses", "I-GEP L2 misses", "ratio"],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igep_beats_gep_in_core() {
        // Shape check at a modest size; the gap is host-cache dependent
        // (the full sweep and the simulated-Xeon misses run via `repro`).
        let rows = fig8(&[512], 1);
        assert!(
            rows[0].speedup() > 1.1,
            "I-GEP should beat GEP: {:.2}x",
            rows[0].speedup()
        );
    }

    #[test]
    fn igep_far_fewer_l2_misses_on_simulated_xeon() {
        // n = 512 i64 = 2 MB matrix >> 512 KB Xeon L2. This is the
        // regime Figure 8 measures (n = 256 fits L2 exactly and shows
        // only compulsory misses for both engines).
        let (_, g, f) = fig8_misses(&[512])[0];
        assert!(
            f * 3 < g,
            "I-GEP should miss at least 3x less in L2: igep={f} gep={g}"
        );
    }
}
