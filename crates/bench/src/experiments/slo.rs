//! SLO experiment: the serving observability stack, gated end-to-end.
//!
//! `repro serve` proves the cache answers correctly under mutation; this
//! experiment proves the *telemetry about* that serving is trustworthy,
//! and turns the service-level objectives into a CI-gated verdict. It
//! stands up an in-process `gep-serve`, runs a warmup read phase, then
//! several mutate→quiesce→read rounds, and checks:
//!
//! * **Accounting closure** — the server's own per-op request histograms
//!   (`serve.req_ns.<op>`) settle to exactly the client's request counts,
//!   every phase histogram carries one sample per request, and the
//!   `status` op's quantile summary agrees (`server_counts_match`,
//!   `phases_complete`);
//! * **Exposition health** — a live `metrics` scrape over TCP passes
//!   [`gep_obs::validate_exposition`] (`exposition_valid`);
//! * **Freshness** — each accepted `mutate` call contributes exactly one
//!   sample to `serve.mutation.staleness_ns`, and the worst observed
//!   mutation-to-visibility latency is under [`SLO_STALENESS_MAX_NS`];
//! * **Latency + correctness SLOs** — server-side dist p99 under
//!   [`SLO_P99_DIST_NS`], zero request errors, zero epoch regressions,
//!   and exactly one epoch swap per round.
//!
//! Everything in the emitted row — counts, epochs, resolves, staleness
//! sample count, and the boolean verdicts — is a pure function of
//! `(n, seed, workers, rounds)`, so the row lives in the deterministic CI
//! baseline. The latency/staleness magnitudes ride along as
//! informational `_ns` fields and histograms.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use gep_obs::{Histogram, Json};
use gep_serve::graph::{random_graph, random_mutations};
use gep_serve::loadgen::{self, LoadgenConfig, Mix, Pacing, RunLength};
use gep_serve::protocol::{response_ok, Request};
use gep_serve::server::{Server, ServerConfig};
use gep_serve::PHASES;

/// Server-side dist p99 objective: 250ms — generous for an `O(1)` lookup
/// (typical is tens of microseconds) so the verdict is stable on loaded
/// CI machines while still catching a pathological serving stack.
pub const SLO_P99_DIST_NS: u64 = 250_000_000;

/// Mutation-to-visibility objective: an accepted write must be servable
/// within 60s (the quick re-solve takes well under a second).
pub const SLO_STALENESS_MAX_NS: u64 = 60_000_000_000;

/// The outcome of one SLO run. Deterministic facts plus boolean verdicts
/// first; informational magnitudes after.
#[derive(Debug)]
pub struct SloOutcome {
    pub n: usize,
    pub workers: usize,
    /// Total loadgen requests across warmup and all rounds.
    pub requests: u64,
    /// Failed requests (must be 0).
    pub errors: u64,
    /// Final epoch (must be `1 + rounds`).
    pub epoch_final: u64,
    /// Background re-solves (must be exactly `rounds`).
    pub resolves: u64,
    /// Edge mutations applied across all rounds.
    pub mutations: u64,
    /// Epoch-went-backwards observations (must be 0).
    pub epoch_regressions: u64,
    /// Samples in `serve.mutation.staleness_ns` (must be `rounds`: one
    /// accepted mutate call per round, one sample each).
    pub staleness_samples: u64,
    /// The composite SLO verdict — what CI gates on.
    pub slo_pass: bool,
    /// The live `metrics` scrape validated.
    pub exposition_valid: bool,
    /// Server per-op counts settled to the client's counts and the
    /// `status` summary agreed.
    pub server_counts_match: bool,
    /// Every phase histogram carries one sample per request of its op.
    pub phases_complete: bool,
    /// Informational magnitudes (wall-clock; never gated).
    pub p99_dist_server_ns: u64,
    pub staleness_max_ns: u64,
    pub staleness_p50_ns: u64,
    pub queue_wait_max_ns: u64,
    pub batch_drain_max_ns: u64,
    /// Per-op client request counts (deterministic).
    pub op_counts: BTreeMap<&'static str, u64>,
    /// Client round-trip latency per op (informational).
    pub latency_ns: BTreeMap<&'static str, Histogram>,
    /// The server's own histograms (per-op totals, per-phase, freshness).
    pub server_hists: BTreeMap<String, Histogram>,
}

/// Runs the experiment. Quick: `n = 128`, 8k warmup reads + 3 rounds of
/// (16-edge mutate + 2k reads). Full: `n = 256`, 40k + 3 × (32-edge + 5k).
pub fn slo(quick: bool) -> SloOutcome {
    let (n, warm_requests, edges_per_round, round_requests) = if quick {
        (128usize, 8_000u64, 16usize, 2_000u64)
    } else {
        (256usize, 40_000u64, 32usize, 5_000u64)
    };
    let rounds = 3u64;
    let workers = 4usize;
    let seed = 4242u64;

    let server =
        Server::start(&ServerConfig::default(), random_graph(n, seed)).expect("server starts");
    let addr = server.local_addr();
    let run = |length: u64, salt: u64| {
        loadgen::run(&LoadgenConfig {
            addr,
            workers,
            pacing: Pacing::Closed,
            length: RunLength::Requests(length),
            mix: Mix::default(),
            seed: seed ^ salt,
            n: n as u32,
        })
        .expect("loadgen phase")
    };

    // Warmup reads at epoch 1, then mutate→quiesce→read rounds: each
    // round's single mutate call is one batch, one re-solve, one epoch
    // swap, one staleness sample.
    let mut reports = vec![run(warm_requests, 0x1111)];
    for round in 0..rounds {
        let edges = random_mutations(n, edges_per_round, seed ^ (0x2222 + round));
        let resp = loadgen::request_once(addr, &Request::Mutate { edges }).expect("mutate");
        assert!(response_ok(&resp), "mutation accepted: {resp:?}");
        server.cache().quiesce();
        reports.push(run(round_requests, 0x3333 + round));
    }

    let stats = server.cache().stats();
    let epoch_final = server.cache().snapshot().epoch;

    let mut op_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut latency_ns: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let (mut requests, mut errors, mut epoch_regressions) = (0u64, 0u64, 0u64);
    for report in &reports {
        requests += report.total();
        errors += report.errors();
        epoch_regressions += report.epoch_regressions;
        for (op, s) in &report.ops {
            *op_counts.entry(op).or_insert(0) += s.count;
            latency_ns.entry(op).or_default().merge(&s.latency_ns);
        }
    }

    // The server records a request's phases *after* writing its response,
    // so its counts can trail the client's by a scheduling hiccup: settle
    // until they match (bounded — a miss fails `server_counts_match`,
    // not the process).
    let deadline = Instant::now() + Duration::from_secs(5);
    let (settled, server_hists) = loop {
        let hists = server.cache().metrics().histograms();
        let settled = op_counts.iter().all(|(op, want)| {
            hists.get(&format!("serve.req_ns.{op}")).map(|h| h.count()) == Some(*want)
        });
        if settled || Instant::now() >= deadline {
            break (settled, hists);
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let phases_complete = op_counts.iter().all(|(op, want)| {
        PHASES.iter().all(|phase| {
            server_hists
                .get(&format!("serve.phase_ns.{op}.{phase}"))
                .map(|h| h.count())
                == Some(*want)
        })
    });

    // A real scrape over the wire, validated like any external consumer
    // would; then the status op's quantile summary must agree with the
    // settled counts.
    let exposition_valid = match loadgen::scrape_metrics(addr) {
        Ok(doc) => gep_obs::validate_exposition(&doc).is_ok(),
        Err(_) => false,
    };
    let status = loadgen::request_once(addr, &Request::Status).expect("status request");
    let status_ops_agree = response_ok(&status)
        && op_counts.iter().all(|(op, want)| {
            status
                .get("ops")
                .and_then(|ops| ops.get(op))
                .and_then(|entry| entry.get("count"))
                .and_then(Json::as_u64)
                == Some(*want)
        });
    let server_counts_match = settled && status_ops_agree;
    server.shutdown();

    let hist_stat =
        |name: &str, f: &dyn Fn(&Histogram) -> u64| server_hists.get(name).map(f).unwrap_or(0);
    let staleness_samples = hist_stat("serve.mutation.staleness_ns", &|h| h.count());
    let staleness_max_ns = hist_stat("serve.mutation.staleness_ns", &|h| h.max());
    let staleness_p50_ns = hist_stat("serve.mutation.staleness_ns", &|h| h.p50().unwrap_or(0));
    let queue_wait_max_ns = hist_stat("serve.mutation.queue_wait_ns", &|h| h.max());
    let batch_drain_max_ns = hist_stat("serve.mutation.batch_drain_ns", &|h| h.max());
    let p99_dist_server_ns = hist_stat("serve.req_ns.dist", &|h| h.p99().unwrap_or(0));

    let slo_pass = errors == 0
        && epoch_regressions == 0
        && epoch_final == 1 + rounds
        && stats.resolves == rounds
        && staleness_samples == rounds
        && server_counts_match
        && phases_complete
        && exposition_valid
        && p99_dist_server_ns < SLO_P99_DIST_NS
        && staleness_max_ns < SLO_STALENESS_MAX_NS;

    SloOutcome {
        n,
        workers,
        requests,
        errors,
        epoch_final,
        resolves: stats.resolves,
        mutations: stats.mutations_applied,
        epoch_regressions,
        staleness_samples,
        slo_pass,
        exposition_valid,
        server_counts_match,
        phases_complete,
        p99_dist_server_ns,
        staleness_max_ns,
        staleness_p50_ns,
        queue_wait_max_ns,
        batch_drain_max_ns,
        op_counts,
        latency_ns,
        server_hists,
    }
}

/// Human-readable summary (stdout companion of `BENCH_slo.json`).
pub fn print_slo(o: &SloOutcome) {
    println!(
        "slo: n={} workers={} — {} requests, {} errors, epochs 1 -> {} via {} re-solve(s) ({} edges), {} regressions",
        o.n,
        o.workers,
        o.requests,
        o.errors,
        o.epoch_final,
        o.resolves,
        o.mutations,
        o.epoch_regressions
    );
    println!(
        "slo: accounting — server counts match: {}; phases complete: {}; exposition valid: {}",
        o.server_counts_match, o.phases_complete, o.exposition_valid
    );
    println!(
        "slo: freshness — {} staleness sample(s), p50 {:.1}ms, max {:.1}ms (queue wait max {:.1}ms, drain max {:.1}ms)",
        o.staleness_samples,
        o.staleness_p50_ns as f64 / 1e6,
        o.staleness_max_ns as f64 / 1e6,
        o.queue_wait_max_ns as f64 / 1e6,
        o.batch_drain_max_ns as f64 / 1e6
    );
    println!(
        "slo: server dist p99 {:.1}us (objective < {:.0}ms) — SLO {}",
        o.p99_dist_server_ns as f64 / 1e3,
        SLO_P99_DIST_NS as f64 / 1e6,
        if o.slo_pass { "PASS" } else { "FAIL" }
    );
}
