//! `repro profile`: per-depth × per-shape attribution for one recorded
//! I-GEP solve, cross-checked against the §3 recurrences.
//!
//! One single-threaded `igep_opt` run of the Floyd–Warshall app (full Σ,
//! kernel-backed) is recorded with spans on. The recorded A/B/C/D call
//! tree is then:
//!
//! 1. **attributed** — calls, wall time (total and self), and update
//!    "flops" (2 ops per min-plus update: add + min) are grouped by
//!    recursion depth × function kind;
//! 2. **cross-checked** — the per-depth call populations must equal
//!    [`gep_parallel::span::abcd_level_counts`] *exactly* (the same
//!    discipline as `repro span`, refined per depth), and the leaf
//!    population must equal `base_cases_full`;
//! 3. **replayed** — the base-case boxes of each [`BoxShape`] are
//!    re-executed under a `gep-hwc` span (`profile.<shape>` labels), so
//!    LLC misses and achieved GFLOP/s attribute to the shape that caused
//!    them (replay runs over a copy of the input, so values differ from
//!    the original run but the per-shape memory footprint is identical);
//! 4. **flattened** — self times fold into a collapsed-stack file
//!    (`profile_flame.folded`) loadable by any flamegraph viewer.
//!
//! The roofline table compares each shape's achieved bytes/flop against
//! the paper's `n³/(B√M)` block-transfer bound from `gep_cachesim`.

use super::misses::Geometry;
use crate::util::{fmt_secs, print_table};
use crate::workloads::random_dist_matrix;
use gep_apps::FwSpec;
use gep_cachesim::igep_miss_bound;
use gep_core::{igep_opt, BoxShape, GepMat, GepSpec};
use gep_hwc::{Availability, HwSpan};
use gep_obs::SpanRecord;
use gep_parallel::span::{abcd_level_counts, base_cases_full, AbcdCounts};
use std::collections::BTreeMap;

const ELEM_BYTES: u64 = 8;
/// One min-plus update = one add + one min.
const OPS_PER_UPDATE: u64 = 2;

/// Attribution for one (recursion depth, function kind) cell.
#[derive(Clone, Copy, Debug)]
pub struct DepthKindRow {
    /// Recursion depth: 0 is the root `A`, the last depth holds leaves.
    pub depth: usize,
    /// Box side at this depth (`n >> depth`).
    pub side: usize,
    /// Function kind: `"A"`, `"B"`, `"C"` or `"D"`.
    pub kind: &'static str,
    /// Recorded invocations.
    pub calls: u64,
    /// Invocations predicted by the §3 recurrences.
    pub predicted: u64,
    /// Total recorded wall time (includes children).
    pub total_ns: u64,
    /// Self wall time (children subtracted).
    pub self_ns: u64,
    /// Update ops attributed here (nonzero only at the leaf depth).
    pub flops: u64,
}

/// Per-shape leaf-replay measurement.
#[derive(Clone, Debug)]
pub struct ShapeRow {
    /// Function kind letter.
    pub kind: &'static str,
    /// Shape name (`BoxShape` in kebab form).
    pub shape: &'static str,
    /// Leaf kernels replayed.
    pub leaves: u64,
    /// Update ops executed by those kernels.
    pub flops: u64,
    /// Replay wall time.
    pub seconds: f64,
    /// Measured LLC misses during the replay, when the host grants
    /// hardware counters.
    pub llc_misses: Option<u64>,
}

impl ShapeRow {
    /// Achieved GFLOP/s of the replay.
    pub fn gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops as f64 / self.seconds / 1e9
        } else {
            0.0
        }
    }
}

/// Everything `repro profile` reports.
#[derive(Clone, Debug)]
pub struct ProfileOutcome {
    /// Matrix side of the profiled solve.
    pub n: usize,
    /// Base-case side.
    pub base: usize,
    /// Selected kernel backend name.
    pub backend: &'static str,
    /// `kernels.fallback` count (0 = every leaf took the specialized
    /// backend path).
    pub fallback_kernels: u64,
    /// Depth × kind attribution, depth-major then A/B/C/D.
    pub rows: Vec<DepthKindRow>,
    /// Per-shape leaf-replay rows (only shapes that occur).
    pub shapes: Vec<ShapeRow>,
    /// Collapsed-stack flamegraph text (`A;B;D <self_ns>` lines).
    pub flame: String,
    /// Leaf-latency histograms recorded during the profiled solve
    /// (`kernel.leaf_ns` and the per-shape variants).
    pub hists: Vec<(String, gep_obs::Histogram)>,
    /// True iff every depth × kind count matched the recurrences and the
    /// counter totals agreed.
    pub cross_check_ok: bool,
    /// Detected cache geometry used for the roofline bound.
    pub geometry: Geometry,
    /// The paper's `n³/(B√M)` block-transfer bound for this solve.
    pub bound_block_transfers: f64,
}

const KINDS: [(&str, BoxShape, &str); 4] = [
    ("A", BoxShape::Diagonal, "diagonal"),
    ("B", BoxShape::RowPanel, "row-panel"),
    ("C", BoxShape::ColPanel, "col-panel"),
    ("D", BoxShape::Disjoint, "disjoint"),
];

fn kind_index(name: &str) -> Option<usize> {
    KINDS.iter().position(|(k, _, _)| *k == name)
}

fn span_arg(s: &SpanRecord, key: &str) -> Option<i64> {
    s.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

/// Self time per span: duration minus the durations of direct children.
/// Spans on one thread always nest (rayon `join` is LIFO per thread;
/// here the run is serial anyway), so a start-ordered stack walk finds
/// every parent/child pair.
fn self_times(spans: &[SpanRecord]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].tid, spans[i].start_ns, u64::MAX - spans[i].dur_ns));
    let mut child_ns = vec![0u64; spans.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &i in &order {
        let s = &spans[i];
        while let Some(&top) = stack.last() {
            let t = &spans[top];
            if t.tid != s.tid || s.start_ns >= t.start_ns + t.dur_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            child_ns[parent] += s.dur_ns;
        }
        stack.push(i);
    }
    spans
        .iter()
        .zip(&child_ns)
        .map(|(s, &c)| s.dur_ns.saturating_sub(c))
        .collect()
}

/// Folds self times into collapsed-stack lines (`A;A;B 1234`), the input
/// format of flamegraph viewers. Stacks are name paths from the root.
fn collapsed_stacks(spans: &[SpanRecord], self_ns: &[u64]) -> String {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].tid, spans[i].start_ns, u64::MAX - spans[i].dur_ns));
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    // Stack of (span index, stack string).
    let mut stack: Vec<(usize, String)> = Vec::new();
    for &i in &order {
        let s = &spans[i];
        while let Some(&(top, _)) = stack.last() {
            let t = &spans[top];
            if t.tid != s.tid || s.start_ns >= t.start_ns + t.dur_ns {
                stack.pop();
            } else {
                break;
            }
        }
        let path = match stack.last() {
            Some((_, parent)) => format!("{parent};{}", s.name),
            None => s.name.to_string(),
        };
        *folded.entry(path.clone()).or_insert(0) += self_ns[i];
        stack.push((i, path));
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// Runs the profiled solve and builds the full attribution. See the
/// module docs for the pipeline.
pub fn profile_report(n: usize, base: usize, avail: &Availability) -> ProfileOutcome {
    let spec = FwSpec::<i64>::new();
    let input = random_dist_matrix(n, 4242);

    gep_obs::install(gep_obs::Recorder::new());
    let mut c = input.clone();
    igep_opt(&spec, &mut c, base);
    let rec = gep_obs::take().expect("recorder was installed");

    let spans: Vec<SpanRecord> = rec
        .spans
        .iter()
        .filter(|s| s.cat == "abcd")
        .cloned()
        .collect();
    let self_ns = self_times(&spans);
    let flame = collapsed_stacks(&spans, &self_ns);

    // Depth × kind attribution from the recorded spans.
    let predicted = abcd_level_counts(n, base);
    let levels = predicted.len();
    let mut calls = vec![[0u64; 4]; levels];
    let mut total = vec![[0u64; 4]; levels];
    let mut selfs = vec![[0u64; 4]; levels];
    let mut attributable = true;
    for (s, &sn) in spans.iter().zip(&self_ns) {
        let (Some(k), Some(side)) = (kind_index(s.name), span_arg(s, "s")) else {
            attributable = false;
            continue;
        };
        let side = side as usize;
        if side == 0 || n % side != 0 || !(n / side).is_power_of_two() {
            attributable = false;
            continue;
        }
        let depth = (n / side).trailing_zeros() as usize;
        if depth >= levels {
            attributable = false;
            continue;
        }
        calls[depth][k] += 1;
        total[depth][k] += s.dur_ns;
        selfs[depth][k] += sn;
    }

    let leaf_flops = (base as u64).pow(3) * OPS_PER_UPDATE;
    let mut rows = Vec::new();
    for (depth, p) in predicted.iter().enumerate() {
        let want = [p.a, p.b, p.c, p.d];
        for (k, &(kind, _, _)) in KINDS.iter().enumerate() {
            rows.push(DepthKindRow {
                depth,
                side: n >> depth,
                kind,
                calls: calls[depth][k],
                predicted: want[k],
                total_ns: total[depth][k],
                self_ns: selfs[depth][k],
                flops: if depth == levels - 1 {
                    calls[depth][k] * leaf_flops
                } else {
                    0
                },
            });
        }
    }

    let leaf_level: AbcdCounts = *predicted.last().expect("at least one level");
    let cross_check_ok = attributable
        && rows.iter().all(|r| r.calls == r.predicted)
        && rec.counter("abcd.base_cases") == base_cases_full(n, base)
        && leaf_level.total() == base_cases_full(n, base)
        && rec.counter("abcd.updates") == (n * n * n) as u64;

    // Per-shape leaf replay under hardware counters.
    let mut replay = input.clone();
    let m = GepMat::new(&mut replay);
    let mut shapes = Vec::new();
    for (k, &(kind, shape, shape_name)) in KINDS.iter().enumerate() {
        let boxes: Vec<(usize, usize, usize, usize)> = spans
            .iter()
            .filter(|s| s.name == kind && span_arg(s, "s").is_some_and(|v| v as usize <= base))
            .filter_map(|s| {
                Some((
                    span_arg(s, "xr")? as usize,
                    span_arg(s, "xc")? as usize,
                    span_arg(s, "kk")? as usize,
                    span_arg(s, "s")? as usize,
                ))
            })
            .collect();
        if boxes.is_empty() {
            continue;
        }
        debug_assert_eq!(boxes.len() as u64, calls[levels - 1][k]);
        let hw = HwSpan::start_with(&format!("profile.{shape_name}"), avail);
        let t0 = std::time::Instant::now();
        for &(xr, xc, kk, s) in &boxes {
            // SAFETY: the replay matrix is exclusively borrowed by `m`
            // and the kernels run sequentially, so every cell access is
            // exclusive; the shape is the engine's own classification of
            // the recorded box.
            unsafe { spec.kernel_shaped(m, xr, xc, kk, s, shape) };
        }
        let seconds = t0.elapsed().as_secs_f64();
        std::hint::black_box(&boxes);
        let reading = hw.stop();
        shapes.push(ShapeRow {
            kind,
            shape: shape_name,
            leaves: boxes.len() as u64,
            flops: boxes.len() as u64 * leaf_flops,
            seconds,
            llc_misses: reading.as_ref().and_then(|r| r.llc_misses()),
        });
    }

    let geometry = Geometry::detect();
    let bound = igep_miss_bound(n, geometry.llc_bytes, geometry.line_bytes, ELEM_BYTES);
    ProfileOutcome {
        n,
        base,
        backend: gep_kernels::selected_backend().name(),
        fallback_kernels: rec.counter("kernels.fallback"),
        rows,
        shapes,
        flame,
        hists: rec
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect(),
        cross_check_ok,
        geometry,
        bound_block_transfers: bound,
    }
}

/// Prints the attribution, cross-check and roofline tables.
pub fn print_profile(p: &ProfileOutcome) {
    let rows: Vec<Vec<String>> = p
        .rows
        .iter()
        .filter(|r| r.calls > 0 || r.predicted > 0)
        .map(|r| {
            vec![
                r.depth.to_string(),
                r.side.to_string(),
                r.kind.to_string(),
                r.calls.to_string(),
                r.predicted.to_string(),
                fmt_secs(r.total_ns as f64 / 1e9),
                fmt_secs(r.self_ns as f64 / 1e9),
                if r.calls == r.predicted {
                    "ok"
                } else {
                    "MISMATCH"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "repro profile: depth x kind attribution (FW, n={}, base {}, backend {}, fallback kernels {})",
            p.n, p.base, p.backend, p.fallback_kernels
        ),
        &[
            "depth", "side", "kind", "calls", "predicted", "total", "self", "",
        ],
        &rows,
    );
    let total_flops = (p.n as u64).pow(3) * OPS_PER_UPDATE;
    let bound_bytes_per_flop =
        p.bound_block_transfers * p.geometry.line_bytes as f64 / total_flops as f64;
    let rows: Vec<Vec<String>> = p
        .shapes
        .iter()
        .map(|s| {
            let bytes_per_flop = s
                .llc_misses
                .map(|m| {
                    format!(
                        "{:.4}",
                        m as f64 * p.geometry.line_bytes as f64 / s.flops as f64
                    )
                })
                .unwrap_or_else(|| "-".into());
            vec![
                s.shape.to_string(),
                s.leaves.to_string(),
                s.flops.to_string(),
                fmt_secs(s.seconds),
                format!("{:.3}", s.gflops()),
                s.llc_misses
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "-".into()),
                bytes_per_flop,
            ]
        })
        .collect();
    print_table(
        &format!(
            "per-shape roofline (leaf replay; bound n³/(B√M) = {:.0} block transfers, {:.4} bytes/flop)",
            p.bound_block_transfers, bound_bytes_per_flop
        ),
        &[
            "shape",
            "leaves",
            "flops",
            "time",
            "GFLOP/s",
            "llc misses",
            "bytes/flop",
        ],
        &rows,
    );
    println!(
        "depth cross-check vs §3 recurrences: {}",
        if p.cross_check_ok { "PASS" } else { "FAIL" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_times_subtract_children() {
        let span = |tid, start_ns, dur_ns| SpanRecord {
            name: "A",
            cat: "abcd",
            tid,
            start_ns,
            dur_ns,
            depth: 0,
            args: vec![],
        };
        // Parent [0, 100); children [10, 40) and [50, 90); grandchild
        // [55, 60). Another thread overlaps freely.
        let spans = vec![
            span(0, 0, 100),
            span(0, 10, 30),
            span(0, 50, 40),
            span(0, 55, 5),
            span(1, 20, 70),
        ];
        assert_eq!(self_times(&spans), vec![30, 30, 35, 5, 70]);
    }

    #[test]
    fn collapsed_stacks_fold_paths() {
        let span = |name, start_ns, dur_ns| SpanRecord {
            name,
            cat: "abcd",
            tid: 0,
            start_ns,
            dur_ns,
            depth: 0,
            args: vec![],
        };
        let spans = vec![span("A", 0, 100), span("B", 10, 20), span("B", 40, 20)];
        let self_ns = self_times(&spans);
        let text = collapsed_stacks(&spans, &self_ns);
        assert_eq!(text, "A 60\nA;B 40\n");
    }
}
