//! `repro tune`: the `gep-kernels` autotuner.
//!
//! Sweeps base size × kernel backend for each of the five kernel-backed
//! applications (GE, LU, FW, TC, MM), picks the fastest configuration,
//! and persists it as a versioned `tuning.json` profile
//! (`gep_kernels::TuningProfile`) that the engines load on their next
//! run. The grid — including the scalar `Generic` baseline — is reported
//! as a table and, with `--json`, as `BENCH_kernels.json`.

use crate::util::{gflops, print_table, timed_best};
use crate::workloads::{dd_matrix, random_dist_matrix, rnd_matrix, XorShift};
use gep_apps::floyd_warshall::FwSpec;
use gep_apps::matmul::matmul;
use gep_apps::{GaussianSpec, LuSpec, TransitiveClosureSpec};
use gep_core::algebra::PlusTimesF64;
use gep_core::igep_opt;
use gep_kernels::{available_backends, set_backend_override, Backend, TuningProfile};
use gep_matrix::Matrix;
use gep_obs::{BenchDoc, Json};
use std::path::PathBuf;

/// Profile keys of the applications the tuner sweeps.
pub const TUNED_APPS: [&str; 5] = ["ge", "lu", "fw", "tc", "mm"];

/// One measured grid point.
#[derive(Clone, Copy, Debug)]
pub struct TunePoint {
    /// Application profile key (`ge`, `lu`, `fw`, `tc`, `mm`).
    pub app: &'static str,
    /// Kernel backend forced for the measurement.
    pub backend: Backend,
    /// I-GEP base (tile) size.
    pub base_size: usize,
    /// Best-of-reps wall time.
    pub seconds: f64,
    /// Updates per second, scaled by the app's per-update op count
    /// (GFLOP/s for the f64 apps, Gop/s for FW/TC).
    pub gflops: f64,
    /// Whether this point won its application.
    pub chosen: bool,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Every measured grid point.
    pub points: Vec<TunePoint>,
    /// The winning profile (global backend + per-app base sizes).
    pub profile: TuningProfile,
}

/// Where the tuner persists its profile: `$GEP_TUNING` if set, else
/// `./tuning.json` (the same resolution order the loader uses).
pub fn profile_out_path() -> PathBuf {
    std::env::var("GEP_TUNING")
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tuning.json"))
}

/// Times one application at `(backend already forced, base)`; returns
/// `(seconds, normalized rate)`.
fn measure(app: &str, n: usize, base: usize, reps: usize) -> (f64, f64) {
    match app {
        "ge" => {
            let input = dd_matrix(n, 0xD15C + n as u64);
            let flops = 2.0 / 3.0 * (n as f64).powi(3);
            let (_, s) = timed_best(reps, || {
                let mut c = input.clone();
                igep_opt(&GaussianSpec, &mut c, base);
                c
            });
            (s, gflops(flops, s))
        }
        "lu" => {
            let input = dd_matrix(n, 0x10D1 + n as u64);
            let flops = 2.0 / 3.0 * (n as f64).powi(3);
            let (_, s) = timed_best(reps, || {
                let mut c = input.clone();
                igep_opt(&LuSpec, &mut c, base);
                c
            });
            (s, gflops(flops, s))
        }
        "fw" => {
            let input = random_dist_matrix(n, 0xF1D0 + n as u64);
            let ops = (n as f64).powi(3);
            let (_, s) = timed_best(reps, || {
                let mut c = input.clone();
                igep_opt(&FwSpec::<i64>::new(), &mut c, base);
                c
            });
            (s, gflops(ops, s))
        }
        "tc" => {
            let mut rng = XorShift(0x7C11 + n as u64);
            let input = Matrix::from_fn(n, n, |i, j| i == j || rng.next_u64() % 8 == 0);
            let ops = (n as f64).powi(3);
            let (_, s) = timed_best(reps, || {
                let mut c = input.clone();
                igep_opt(&TransitiveClosureSpec, &mut c, base);
                c
            });
            (s, gflops(ops, s))
        }
        "mm" => {
            let a = rnd_matrix(n, 0x3131 + n as u64);
            let b = rnd_matrix(n, 0x3232 + n as u64);
            let flops = 2.0 * (n as f64).powi(3);
            let (_, s) = timed_best(reps, || matmul::<PlusTimesF64>(&a, &b, base));
            (s, gflops(flops, s))
        }
        other => unreachable!("unknown tuned app {other}"),
    }
}

/// Runs the sweep, prints the table, writes the profile, and returns the
/// grid.
pub fn tune(quick: bool) -> TuneOutcome {
    let n = if quick { 256 } else { 512 };
    let reps = if quick { 1 } else { 3 };
    let bases: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[16, 32, 64, 128]
    };
    tune_with(n, reps, bases)
}

/// The sweep at an explicit grid (testable at tiny sizes).
pub fn tune_with(n: usize, reps: usize, bases: &[usize]) -> TuneOutcome {
    let backends = available_backends();

    let mut points: Vec<TunePoint> = vec![];
    for app in TUNED_APPS {
        for &backend in &backends {
            set_backend_override(Some(backend));
            for &base in bases {
                let (seconds, rate) = measure(app, n, base, reps);
                points.push(TunePoint {
                    app,
                    backend,
                    base_size: base,
                    seconds,
                    gflops: rate,
                    chosen: false,
                });
            }
        }
    }
    set_backend_override(None);

    // Global backend: the one minimizing the sum over apps of its best
    // per-app time (the profile pins a single backend, matching the
    // one-dispatch-per-process model).
    let total = |b: Backend| -> f64 {
        TUNED_APPS
            .iter()
            .map(|app| {
                points
                    .iter()
                    .filter(|p| p.app == *app && p.backend == b)
                    .map(|p| p.seconds)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    };
    let best_backend = backends
        .iter()
        .copied()
        .min_by(|&a, &b| total(a).total_cmp(&total(b)))
        .unwrap_or(Backend::Portable);

    let mut profile = TuningProfile {
        backend: Some(best_backend),
        apps: vec![],
    };
    for app in TUNED_APPS {
        let winner = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.app == app && p.backend == best_backend)
            .min_by(|(_, x), (_, y)| x.seconds.total_cmp(&y.seconds))
            .map(|(i, _)| i)
            .expect("grid covers every app");
        points[winner].chosen = true;
        profile.set_base_size(app, points[winner].base_size);
    }

    let mut rows = vec![];
    for p in &points {
        rows.push(vec![
            p.app.to_string(),
            p.backend.name().to_string(),
            p.base_size.to_string(),
            format!("{:.1}ms", p.seconds * 1e3),
            format!("{:.2}", p.gflops),
            if p.chosen { "*".into() } else { String::new() },
        ]);
    }
    print_table(
        &format!("repro tune: backend x base-size sweep (n = {n})"),
        &["app", "backend", "base", "time", "G(fl)op/s", "chosen"],
        &rows,
    );
    let path = profile_out_path();
    match profile.save(&path) {
        Ok(()) => println!(
            "wrote {} (backend {}, bases {})",
            path.display(),
            best_backend.name(),
            TUNED_APPS
                .map(|a| format!("{a}={}", profile.base_size(a)))
                .join(" ")
        ),
        Err(e) => eprintln!("error: could not write {}: {e}", path.display()),
    }
    TuneOutcome { points, profile }
}

/// The sweep as a `BENCH_kernels.json` document.
pub fn tune_doc(outcome: &TuneOutcome, quick: bool) -> BenchDoc {
    let mut d = BenchDoc::new(
        "kernels",
        "gep-kernels autotuner: backend x base-size sweep per application",
        quick,
    )
    .host(&crate::util::host_info());
    for p in &outcome.points {
        d.row(vec![
            ("app", Json::Str(p.app.into())),
            ("backend", Json::Str(p.backend.name().into())),
            ("base_size", Json::Int(p.base_size as i64)),
            ("seconds", Json::Float(p.seconds)),
            ("gflops", Json::Float(p.gflops)),
            ("chosen", Json::Bool(p.chosen)),
        ]);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_covers_grid_and_picks_one_winner_per_app() {
        // Tiny guard sweep in a scratch dir so the test never clobbers a
        // real ./tuning.json.
        let dir = std::env::temp_dir().join(format!("gep_tune_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("GEP_TUNING", dir.join("tuning.json"));
        let out = tune_with(32, 1, &[8, 16]);
        std::env::remove_var("GEP_TUNING");
        let backends = available_backends().len();
        assert_eq!(out.points.len(), TUNED_APPS.len() * backends * 2);
        for app in TUNED_APPS {
            assert_eq!(
                out.points
                    .iter()
                    .filter(|p| p.app == app && p.chosen)
                    .count(),
                1,
                "exactly one winner for {app}"
            );
            assert!(out.profile.base_size(app) >= 1);
        }
        assert!(out.profile.backend.is_some());
        // The persisted profile round-trips through the loader.
        let loaded = TuningProfile::load(&dir.join("tuning.json")).unwrap();
        assert_eq!(loaded, out.profile);
        let doc = tune_doc(&out, true);
        assert_eq!(doc.filename(), "BENCH_kernels.json");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
