//! Figure 10: Gaussian elimination without pivoting — iterative GEP vs
//! cache-oblivious I-GEP vs the cache-aware blocked baseline
//! (GotoBLAS/FLAME substitute).
//!
//! Paper shapes: baseline > I-GEP > GEP, with the baseline ~1.5× I-GEP
//! and I-GEP ~5–6× GEP. We report GFLOPS (2n³/3 flops) and rates relative
//! to the baseline (the paper's %-of-peak axis needs the machine's
//! theoretical peak, which is not knowable portably; ratios preserve the
//! shape).

use crate::util::{fmt_secs, gflops, print_table, timed_best};
use crate::workloads::dd_matrix;
use gep_apps::GaussianSpec;
use gep_blaslike::ge_blocked;
use gep_core::{gep_iterative, igep_opt};

/// One (n) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Row {
    /// Matrix side.
    pub n: usize,
    /// Iterative GEP seconds.
    pub gep_s: f64,
    /// Optimised I-GEP seconds.
    pub igep_s: f64,
    /// Blocked cache-aware baseline seconds.
    pub blas_s: f64,
}

/// Runs the sweep and prints the table.
pub fn fig10(sizes: &[usize], reps: usize) -> Vec<Fig10Row> {
    // Base size from tuning.json when a `repro tune` sweep produced one,
    // else the built-in default (64). The kernel backend itself resolves
    // inside gep-kernels (profile / GEP_KERNELS / CPU detection).
    let base = gep_kernels::tuned_base_size("ge");
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let input = dd_matrix(n, 61610 + n as u64);
        let flops = 2.0 / 3.0 * (n as f64).powi(3);
        let (_, gep_s) = timed_best(reps, || {
            let mut c = input.clone();
            gep_iterative(&GaussianSpec, &mut c);
            c
        });
        let (_, igep_s) = timed_best(reps, || {
            let mut c = input.clone();
            igep_opt(&GaussianSpec, &mut c, base);
            c
        });
        let (_, blas_s) = timed_best(reps, || {
            let mut c = input.clone();
            ge_blocked(&mut c, 64);
            c
        });
        out.push(Fig10Row {
            n,
            gep_s,
            igep_s,
            blas_s,
        });
        rows.push(vec![
            n.to_string(),
            format!("{} ({:.2} GF)", fmt_secs(gep_s), gflops(flops, gep_s)),
            format!("{} ({:.2} GF)", fmt_secs(igep_s), gflops(flops, igep_s)),
            format!("{} ({:.2} GF)", fmt_secs(blas_s), gflops(flops, blas_s)),
            format!("{:.2}x", gep_s / igep_s),
            format!("{:.2}x", igep_s / blas_s),
        ]);
    }
    print_table(
        "Figure 10: Gaussian elimination w/o pivoting (f64)",
        &[
            "n",
            "GEP",
            &format!("I-GEP (base {base})"),
            "cache-aware blocked",
            "GEP/I-GEP",
            "I-GEP/blocked",
        ],
        &rows,
    );
    println!("paper: GotoBLAS ~75-83% peak, I-GEP ~45-55%, GEP ~7-9% (ordering and rough factors are the reproduction target).");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igep_beats_gep_by_paper_like_factor() {
        let r = fig10(&[256], 2)[0];
        assert!(
            r.gep_s / r.igep_s > 2.5,
            "I-GEP should beat GEP decisively: {:.2}x",
            r.gep_s / r.igep_s
        );
        // The blocked cache-aware baseline must at least be in I-GEP's
        // league (the paper's 1.5x BLAS advantage came from vendor
        // assembly; see EXPERIMENTS.md). With the gep-kernels SIMD base
        // cases I-GEP now meets or beats the scalar blocked baseline, so
        // the bound is one-sided: I-GEP must not fall behind it by 2x.
        assert!(r.blas_s < r.gep_s, "blocked baseline far above GEP");
        assert!(
            r.igep_s < 2.0 * r.blas_s,
            "I-GEP fell out of the blocked baseline's league: {:.1}ms vs {:.1}ms",
            r.igep_s * 1e3,
            r.blas_s * 1e3
        );
    }
}
