//! Serving experiment: the paper's amortization story, measured
//! end-to-end.
//!
//! One cache-oblivious I-GEP Floyd–Warshall solve costs `Θ(n³)`; every
//! point query afterwards is an `O(1)` lookup. This experiment stands up
//! a real `gep-serve` TCP server in-process, drives it with the real
//! load generator, and emits `BENCH_serve.json`:
//!
//! * **Phase 1 (cached reads)** — a fixed count of `dist(u, v)` queries
//!   (≥100k at full scale against one cached `n = 512` solve) in
//!   closed-loop mode; per-request latency goes to log-bucketed
//!   histograms (p50/p90/p99 in the document's `histograms` object —
//!   informational, never gated).
//! * **Phase 2 (mutate + re-solve)** — one `mutate` request carrying a
//!   seeded batch; the background solver must run *exactly once* and
//!   swap epoch 1 → 2. The post-swap matrix is verified bit-for-bit
//!   against an independent from-scratch reference solve of the mutated
//!   graph.
//! * **Phase 3 (post-swap reads)** — a short mixed workload answered
//!   entirely at epoch 2.
//!
//! Everything in the emitted *row* — request counts, error counts,
//! epochs, re-solve count, oracle verdict — is a pure function of
//! `(n, seed, workers)`, so the row belongs in the CI deterministic
//! baseline. Latency lives only in histograms.

use std::collections::BTreeMap;

use gep_apps::reference::fw_reference;
use gep_apps::Weight;
use gep_obs::Histogram;
use gep_serve::graph::{apply_mutations, random_graph, random_mutations};
use gep_serve::loadgen::{self, LoadgenConfig, Mix, Pacing, RunLength};
use gep_serve::protocol::{response_ok, Request};
use gep_serve::server::{Server, ServerConfig};

/// The deterministic outcome of one serving run (plus informational
/// timings/latencies).
#[derive(Debug)]
pub struct ServeOutcome {
    /// Graph size.
    pub n: usize,
    /// Load-generator workers (connections).
    pub workers: usize,
    /// Total requests across both query phases.
    pub requests: u64,
    /// Failed requests (must be 0).
    pub errors: u64,
    /// Epoch answering phase 1 (must be 1).
    pub epoch_start: u64,
    /// Epoch answering phase 3 / final (must be 2).
    pub epoch_final: u64,
    /// Background re-solves (must be exactly 1: one batch, one solve).
    pub resolves: u64,
    /// Mutations in the applied batch.
    pub mutations: u64,
    /// Responses whose epoch went backwards on a connection (must be 0).
    pub epoch_regressions: u64,
    /// Whether the post-swap cache bit-matched the from-scratch
    /// reference solve of the mutated graph.
    pub oracle_match: bool,
    /// Initial solve seconds (informational).
    pub solve_s: f64,
    /// Phase 1 wall-clock seconds and throughput (informational).
    pub read_elapsed_s: f64,
    pub read_qps: f64,
    /// Per-op request counts (deterministic for the fixed workload).
    pub op_counts: BTreeMap<&'static str, u64>,
    /// Per-op latency histograms (informational).
    pub latency_ns: BTreeMap<&'static str, Histogram>,
}

/// Runs the experiment. Full scale: `n = 512`, 120k cached dist queries
/// (the ≥100k acceptance floor with margin). Quick: `n = 128`, 20k.
pub fn serve(quick: bool) -> ServeOutcome {
    let (n, phase1_requests, phase3_requests, mutation_count) = if quick {
        (128usize, 20_000u64, 2_000u64, 32usize)
    } else {
        (512usize, 120_000u64, 10_000u64, 64usize)
    };
    let workers = 4;
    let seed = 42;

    let base = random_graph(n, seed);
    let server = Server::start(&ServerConfig::default(), base.clone()).expect("server starts");
    let addr = server.local_addr();
    let solve_s = server.cache().snapshot().solve_s;

    // Phase 1: cached dist reads against epoch 1.
    let read = loadgen::run(&LoadgenConfig {
        addr,
        workers,
        pacing: Pacing::Closed,
        length: RunLength::Requests(phase1_requests),
        mix: Mix::dist_only(),
        seed: seed ^ 0xA5A5,
        n: n as u32,
    })
    .expect("phase 1 loadgen");
    let epoch_start = read.epoch_max;

    // Phase 2: one mutation batch, exactly one re-solve, oracle check.
    let muts = random_mutations(n, mutation_count, seed ^ 0x5A5A);
    let resp = loadgen::request_once(
        addr,
        &Request::Mutate {
            edges: muts.clone(),
        },
    )
    .expect("mutate request");
    assert!(response_ok(&resp), "mutation accepted: {resp:?}");
    server.cache().quiesce();
    let snap = server.cache().snapshot();
    let stats = server.cache().stats();

    let mut mutated = base;
    apply_mutations(&mut mutated, &muts);
    let oracle = fw_reference(&mutated);
    let inf = <i64 as Weight>::INFINITY;
    let oracle_match =
        (0..n).all(|u| (0..n).all(|v| snap.dist(u, v).unwrap_or(inf) == oracle.get(u, v).min(inf)));

    // Phase 3: a short mixed workload, answered entirely at epoch 2.
    let post = loadgen::run(&LoadgenConfig {
        addr,
        workers,
        pacing: Pacing::Closed,
        length: RunLength::Requests(phase3_requests),
        mix: Mix::default(),
        seed: seed ^ 0xC3C3,
        n: n as u32,
    })
    .expect("phase 3 loadgen");

    server.shutdown();

    let mut op_counts = BTreeMap::new();
    let mut latency_ns: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for report in [&read, &post] {
        for (op, stats) in &report.ops {
            *op_counts.entry(*op).or_insert(0) += stats.count;
            latency_ns.entry(op).or_default().merge(&stats.latency_ns);
        }
    }

    ServeOutcome {
        n,
        workers,
        requests: read.total() + post.total(),
        errors: read.errors() + post.errors(),
        epoch_start,
        epoch_final: post.epoch_max.max(snap.epoch),
        resolves: stats.resolves,
        mutations: stats.mutations_applied,
        epoch_regressions: read.epoch_regressions
            + post.epoch_regressions
            + u64::from(post.epoch_min < snap.epoch),
        oracle_match,
        solve_s,
        read_elapsed_s: read.elapsed_s,
        read_qps: read.qps(),
        op_counts,
        latency_ns,
    }
}

/// Human-readable summary (stdout companion of `BENCH_serve.json`).
pub fn print_serve(o: &ServeOutcome) {
    println!(
        "serve: n={} workers={} — initial solve {:.3}s; {} cached dist reads at {:.0} req/s",
        o.n,
        o.workers,
        o.solve_s,
        o.op_counts.get("dist").copied().unwrap_or(0),
        o.read_qps
    );
    println!(
        "serve: epochs {} -> {} via {} re-solve(s) of a {}-edge batch; oracle match: {}; epoch regressions: {}",
        o.epoch_start, o.epoch_final, o.resolves, o.mutations, o.oracle_match, o.epoch_regressions
    );
    for (op, hist) in &o.latency_ns {
        let q = |p: Option<u64>| p.map(|ns| ns as f64 / 1e3).unwrap_or(f64::NAN);
        println!(
            "serve: {:<6} {:>8} reqs  p50 {:>8.1}us  p90 {:>8.1}us  p99 {:>8.1}us",
            op,
            hist.count(),
            q(hist.p50()),
            q(hist.p90()),
            q(hist.p99()),
        );
    }
}
