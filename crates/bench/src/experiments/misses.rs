//! `repro misses` — measured cache misses vs cachesim vs the paper bound.
//!
//! The paper's Section 4 claim is that I-GEP's *real* miss counts track
//! the cache-oblivious `Θ(n³/(B√M))` bound while iterative GEP pays
//! `Θ(n³/B)`. This experiment sweeps `n` for both Gaussian elimination
//! and Floyd–Warshall over four engines —
//!
//! * `iterative` — the triply nested loop of Figure 1,
//! * `blocked` — the cache-aware blocked baseline (GE only),
//! * `igep` — the plain I-GEP recursion (no vector kernels),
//! * `igep_kernel` — I-GEP with the `gep-kernels` base cases (row label
//!   carries the active backend name),
//!
//! — and reports three miss numbers per row: **measured** LLC misses from
//! hardware counters (`gep-hwc`; absent on denied hosts, never zero),
//! **simulated** LLC misses from a host-shaped
//! [`TrackedMatrix`](gep_cachesim::TrackedMatrix) hierarchy (engines the
//! simulator can drive), and the **analytic** bound evaluated with the
//! host's detected `B` and `M`. The fitted constants (median
//! measured/bound — [`gep_cachesim::fit_constant`]) quantify how tightly
//! the asymptotic curves describe this machine.

use crate::util::{fmt_secs, print_table, timed_best};
use crate::workloads::{dd_matrix, random_dist_matrix};
use gep_apps::{FwSpec, GaussianSpec};
use gep_blaslike::ge_blocked;
use gep_cachesim::{
    fit_constant, igep_miss_bound, iterative_miss_bound, AddressSpace, Hierarchy, HostCaches,
    TrackedMatrix,
};
use gep_core::{gep_iterative, igep, igep_opt};
use gep_hwc::{Availability, HwReading, HwSpan};
use std::cell::RefCell;
use std::rc::Rc;

/// Elements are `f64` (GE) or `i64` (FW) — 8 bytes either way.
const ELEM_BYTES: u64 = 8;

/// The cache geometry the bound and the simulator both use.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// Last-level cache capacity in bytes (the bound's `M`).
    pub llc_bytes: u64,
    /// Cache line size in bytes (the bound's `B`).
    pub line_bytes: u64,
    /// `"sysfs"` when detected from the host, else the Table 2 fallback.
    pub source: &'static str,
    host: Option<HostCaches>,
}

impl Geometry {
    /// Detects the host geometry, falling back to the simulated Intel
    /// Xeon's L2 when `/sys` is unavailable (non-Linux).
    pub fn detect() -> Geometry {
        match gep_cachesim::detect_host() {
            Some(host) => {
                let ll = host.last_level().expect("detect_host yields levels");
                Geometry {
                    llc_bytes: ll.size_bytes,
                    line_bytes: ll.line_bytes,
                    source: "sysfs",
                    host: Some(host),
                }
            }
            None => {
                let xeon = gep_cachesim::table2_machines()[0];
                Geometry {
                    llc_bytes: xeon.l2.0,
                    line_bytes: xeon.l2.2,
                    source: "table2-xeon-l2",
                    host: None,
                }
            }
        }
    }

    fn hierarchy(&self) -> Hierarchy {
        match &self.host {
            Some(h) => h.hierarchy().expect("detected hosts have L1+LLC"),
            None => gep_cachesim::table2_machines()[0].hierarchy(),
        }
    }
}

/// One (app, engine, n) measurement.
#[derive(Clone, Debug)]
pub struct MissRow {
    /// `"ge"` or `"fw"`.
    pub app: &'static str,
    /// Engine slug (see module docs).
    pub engine: &'static str,
    /// Kernel backend name for `igep_kernel`, `"-"` otherwise.
    pub backend: &'static str,
    /// Matrix side.
    pub n: usize,
    /// Best-of-reps wall time.
    pub seconds: f64,
    /// Analytic miss bound for this engine at the host geometry
    /// (unscaled — multiply by the fitted constant to predict counts).
    pub bound: f64,
    /// Simulated LLC misses, when the simulator can drive this engine.
    pub sim_llc: Option<u64>,
    /// Hardware readings, when counters are live.
    pub hw: Option<HwReading>,
}

impl MissRow {
    /// Measured LLC misses, if the PMU scheduled that event.
    pub fn hw_llc(&self) -> Option<u64> {
        self.hw.as_ref().and_then(HwReading::llc_misses)
    }

    /// `simulated / bound`.
    pub fn ratio_sim(&self) -> Option<f64> {
        self.sim_llc
            .filter(|_| self.bound > 0.0)
            .map(|s| s as f64 / self.bound)
    }

    /// `measured / bound`.
    pub fn ratio_hw(&self) -> Option<f64> {
        self.hw_llc()
            .filter(|_| self.bound > 0.0)
            .map(|m| m as f64 / self.bound)
    }
}

/// The full experiment result.
#[derive(Clone, Debug)]
pub struct MissesOutcome {
    /// All rows, grouped by app then n then engine.
    pub rows: Vec<MissRow>,
    /// Geometry both the bound and the simulator used.
    pub geometry: Geometry,
    /// Why hardware counters were unavailable, if they were.
    pub hwc_reason: Option<String>,
    /// Fitted constants: `("fit_hw.ge.igep", 1.8)`-style pairs, one per
    /// (source, app, engine) with data.
    pub fits: Vec<(String, f64)>,
}

/// Runs the sweep with default sizes. Degrades gracefully: on hosts that
/// deny `perf_event_open` the measured column is absent (and
/// `hwc.unavailable` counts the attempts), never zero.
pub fn misses(quick: bool) -> MissesOutcome {
    let (sizes, sim_cap, reps): (&[usize], usize, usize) = if quick {
        (&[128, 256], 256, 1)
    } else {
        (&[256, 512, 1024], 512, 2)
    };
    misses_sized(sizes, sim_cap, reps, gep_hwc::availability())
}

/// [`misses`] with every environment input injected — sizes, the largest
/// `n` worth simulating, and the counter availability decision (the
/// force-deny tests drive this directly).
pub fn misses_sized(
    sizes: &[usize],
    sim_cap: usize,
    reps: usize,
    avail: &Availability,
) -> MissesOutcome {
    let geometry = Geometry::detect();
    let mut rows = Vec::new();

    // Times `f`, then repeats it once more under hardware counters. The
    // counted run is separate from the timed ones so counter multiplexing
    // never pollutes the timing column.
    let measure = |label: &str, reps: usize, f: &mut dyn FnMut()| -> (f64, Option<HwReading>) {
        let (_, secs) = timed_best(reps, &mut *f);
        let span = HwSpan::start_with(label, avail);
        f();
        (secs, span.stop())
    };

    let backend = gep_kernels::selected_backend().name();
    for &n in sizes {
        let sim = n <= sim_cap;

        // Gaussian elimination (f64, diagonally dominant input).
        let input = dd_matrix(n, 61612 + n as u64);
        let sim_ge = |use_igep: bool| -> u64 {
            let cache = Rc::new(RefCell::new(geometry.hierarchy()));
            let mut space = AddressSpace::new();
            let mut t = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
            if use_igep {
                igep(&GaussianSpec, &mut t, 64);
            } else {
                gep_iterative(&GaussianSpec, &mut t);
            }
            let misses = cache.borrow().l2_stats().misses;
            misses
        };
        let it_bound = iterative_miss_bound(n, geometry.line_bytes, ELEM_BYTES);
        let rec_bound = igep_miss_bound(n, geometry.llc_bytes, geometry.line_bytes, ELEM_BYTES);

        let (secs, hw) = measure("ge.iterative", reps, &mut || {
            let mut c = input.clone();
            gep_iterative(&GaussianSpec, &mut c);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "ge",
            engine: "iterative",
            backend: "-",
            n,
            seconds: secs,
            bound: it_bound,
            sim_llc: sim.then(|| sim_ge(false)),
            hw,
        });

        let (secs, hw) = measure("ge.blocked", reps, &mut || {
            let mut c = input.clone();
            ge_blocked(&mut c, 64);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "ge",
            engine: "blocked",
            backend: "-",
            n,
            seconds: secs,
            bound: rec_bound,
            sim_llc: None, // the simulator drives CellStore engines only
            hw,
        });

        let (secs, hw) = measure("ge.igep", reps, &mut || {
            let mut c = input.clone();
            igep(&GaussianSpec, &mut c, 64);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "ge",
            engine: "igep",
            backend: "-",
            n,
            seconds: secs,
            bound: rec_bound,
            sim_llc: sim.then(|| sim_ge(true)),
            hw,
        });

        let base = gep_kernels::tuned_base_size("ge");
        let (secs, hw) = measure(&format!("ge.igep_{backend}"), reps, &mut || {
            let mut c = input.clone();
            igep_opt(&GaussianSpec, &mut c, base);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "ge",
            engine: "igep_kernel",
            backend,
            n,
            seconds: secs,
            bound: rec_bound,
            sim_llc: None, // kernel base cases bypass per-element access
            hw,
        });

        // Floyd–Warshall (i64 min-plus).
        let spec = FwSpec::<i64>::new();
        let input = random_dist_matrix(n, 61613 + n as u64);
        let sim_fw = |use_igep: bool| -> u64 {
            let cache = Rc::new(RefCell::new(geometry.hierarchy()));
            let mut space = AddressSpace::new();
            let mut t = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
            if use_igep {
                igep(&spec, &mut t, 64);
            } else {
                gep_iterative(&spec, &mut t);
            }
            let misses = cache.borrow().l2_stats().misses;
            misses
        };

        let (secs, hw) = measure("fw.iterative", reps, &mut || {
            let mut c = input.clone();
            gep_iterative(&spec, &mut c);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "fw",
            engine: "iterative",
            backend: "-",
            n,
            seconds: secs,
            bound: it_bound,
            sim_llc: sim.then(|| sim_fw(false)),
            hw,
        });

        let (secs, hw) = measure("fw.igep", reps, &mut || {
            let mut c = input.clone();
            igep(&spec, &mut c, 64);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "fw",
            engine: "igep",
            backend: "-",
            n,
            seconds: secs,
            bound: rec_bound,
            sim_llc: sim.then(|| sim_fw(true)),
            hw,
        });

        let base = gep_kernels::tuned_base_size("fw");
        let (secs, hw) = measure(&format!("fw.igep_{backend}"), reps, &mut || {
            let mut c = input.clone();
            igep_opt(&spec, &mut c, base);
            std::hint::black_box(&c);
        });
        rows.push(MissRow {
            app: "fw",
            engine: "igep_kernel",
            backend,
            n,
            seconds: secs,
            bound: rec_bound,
            sim_llc: None,
            hw,
        });
    }

    let fits = compute_fits(&rows);
    MissesOutcome {
        rows,
        geometry,
        hwc_reason: avail.reason().map(str::to_string),
        fits,
    }
}

fn compute_fits(rows: &[MissRow]) -> Vec<(String, f64)> {
    let mut fits = Vec::new();
    let mut keys: Vec<(&str, &str)> = Vec::new();
    for r in rows {
        if !keys.contains(&(r.app, r.engine)) {
            keys.push((r.app, r.engine));
        }
    }
    for (app, engine) in keys {
        let of = |rows: &[MissRow], pick: &dyn Fn(&MissRow) -> Option<u64>| -> Option<f64> {
            let pairs: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.app == app && r.engine == engine)
                .filter_map(|r| pick(r).map(|m| (m as f64, r.bound)))
                .collect();
            fit_constant(&pairs)
        };
        if let Some(c) = of(rows, &MissRow::hw_llc) {
            fits.push((format!("fit_hw.{app}.{engine}"), c));
        }
        if let Some(c) = of(rows, &|r: &MissRow| r.sim_llc) {
            fits.push((format!("fit_sim.{app}.{engine}"), c));
        }
    }
    fits
}

/// Prints the measured-vs-simulated-vs-bound tables.
pub fn print_misses(outcome: &MissesOutcome) {
    let g = &outcome.geometry;
    println!(
        "\ncache geometry ({}): LLC M = {} KB, line B = {} bytes (sqrt(M) = {:.0} elements)",
        g.source,
        g.llc_bytes / 1024,
        g.line_bytes,
        gep_cachesim::predicted_speedup_factor(g.llc_bytes, ELEM_BYTES),
    );
    match &outcome.hwc_reason {
        Some(reason) => println!("hardware counters unavailable: {reason}"),
        None => println!("hardware counters: live (perf_event_open)"),
    }
    let cell = |v: Option<String>| v.unwrap_or_else(|| "-".into());
    for (app, title) in [
        ("ge", "Gaussian elimination (f64)"),
        ("fw", "Floyd-Warshall (i64 min-plus)"),
    ] {
        let rows: Vec<Vec<String>> = outcome
            .rows
            .iter()
            .filter(|r| r.app == app)
            .map(|r| {
                vec![
                    r.n.to_string(),
                    if r.engine == "igep_kernel" {
                        format!("{} ({})", r.engine, r.backend)
                    } else {
                        r.engine.to_string()
                    },
                    fmt_secs(r.seconds),
                    cell(r.hw_llc().map(|v| v.to_string())),
                    cell(r.sim_llc.map(|v| v.to_string())),
                    format!("{:.3e}", r.bound),
                    cell(r.ratio_hw().map(|v| format!("{v:.2}"))),
                    cell(r.ratio_sim().map(|v| format!("{v:.2}"))),
                ]
            })
            .collect();
        print_table(
            &format!("repro misses: {title}"),
            &[
                "n",
                "engine",
                "time",
                "LLC misses (hw)",
                "LLC misses (sim)",
                "bound n^3/(B*sqrt(M))",
                "hw/bound",
                "sim/bound",
            ],
            &rows,
        );
    }
    if outcome.fits.is_empty() {
        println!("no fitted constants (no measured or simulated misses)");
    } else {
        for (name, c) in &outcome.fits {
            println!("{name} = {c:.3}");
        }
        println!("(median measured/bound per engine; the paper predicts O(1) constants for igep)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn force_denied_counters_degrade_not_fail() {
        let _g = lock();
        gep_obs::install(gep_obs::Recorder::counters_only());
        let denied = Availability::Unavailable {
            reason: "mocked perf_event_paranoid=3".to_string(),
        };
        let outcome = misses_sized(&[32, 64], 64, 1, &denied);
        // The experiment completes with every engine row present...
        assert_eq!(outcome.rows.len(), 2 * 7);
        assert_eq!(
            outcome.hwc_reason.as_deref(),
            Some("mocked perf_event_paranoid=3")
        );
        for row in &outcome.rows {
            // ...hardware columns absent (None), never zero...
            assert!(row.hw.is_none(), "{row:?}");
            assert!(row.hw_llc().is_none());
            assert!(row.bound > 0.0, "{row:?}");
            assert!(row.seconds >= 0.0);
        }
        // ...simulated misses still flow for the CellStore engines...
        for row in &outcome.rows {
            match row.engine {
                "iterative" | "igep" => assert!(row.sim_llc.is_some(), "{row:?}"),
                _ => assert!(row.sim_llc.is_none(), "{row:?}"),
            }
        }
        // ...and the recorder shows the degradation marker, not fake zeros.
        let rec = gep_obs::take().unwrap();
        assert_eq!(rec.counter("hwc.unavailable"), outcome.rows.len() as u64);
        assert!(
            !rec.counters
                .keys()
                .any(|k| k.starts_with("hwc.ge.") || k.starts_with("hwc.fw.")),
            "denied runs must not publish event counters: {:?}",
            rec.counters
        );
        // Fits exist from the simulated side even with no hardware.
        assert!(outcome.fits.iter().any(|(n, _)| n.starts_with("fit_sim.")));
        assert!(!outcome.fits.iter().any(|(n, _)| n.starts_with("fit_hw.")));
    }

    #[test]
    fn bounds_order_iterative_above_igep() {
        let g = Geometry::detect();
        let it = iterative_miss_bound(512, g.line_bytes, ELEM_BYTES);
        let ig = igep_miss_bound(512, g.llc_bytes, g.line_bytes, ELEM_BYTES);
        assert!(
            it > ig,
            "n^3/B must dominate n^3/(B*sqrt(M)): it={it} ig={ig}"
        );
    }

    #[test]
    fn live_sweep_smoke() {
        let _g = lock();
        // Whatever this host allows: rows complete, ratios only exist
        // where their inputs do.
        gep_obs::install(gep_obs::Recorder::counters_only());
        let outcome = misses_sized(&[32], 32, 1, gep_hwc::availability());
        let _ = gep_obs::take();
        assert_eq!(outcome.rows.len(), 7);
        for row in &outcome.rows {
            assert_eq!(row.ratio_hw().is_some(), row.hw_llc().is_some());
            assert_eq!(row.ratio_sim().is_some(), row.sim_llc.is_some());
        }
        if outcome.hwc_reason.is_none() {
            // Live counters: at least the software clock was read.
            assert!(outcome.rows.iter().any(|r| r.hw.is_some()));
        }
    }
}
