//! Sections 2–3 artefacts: the §2.2.1 counterexample, Table 1, Table 2,
//! the span recurrences, and the reduced-space C-GEP measurement.

use crate::util::print_table;
use gep_core::trace::{check_table1_g, check_theorem_2_1, check_theorem_2_2};
use gep_core::{cgep_full, cgep_reduced, gep_iterative, igep, SumSpec};
use gep_matrix::Matrix;
use gep_parallel::span;

/// §2.2.1: the 2×2 instance on which I-GEP diverges from GEP, and C-GEP
/// does not. Returns `(g, f, h)` values of `c[2,1]` (paper indexing).
pub fn counterexample() -> (i64, i64, i64) {
    let init = Matrix::from_rows(&[vec![0i64, 0], vec![0, 1]]);
    let mut g = init.clone();
    let mut f = init.clone();
    let mut h = init.clone();
    gep_iterative(&SumSpec, &mut g);
    igep(&SumSpec, &mut f, 1);
    cgep_full(&SumSpec, &mut h, 1);
    print_table(
        "Section 2.2.1 counterexample: c = [[0,0],[0,1]], f = sum, full Σ",
        &["engine", "c[2,1] (paper 1-based)"],
        &[
            vec!["G (iterative GEP)".into(), g[(1, 0)].to_string()],
            vec!["F (I-GEP)".into(), f[(1, 0)].to_string()],
            vec!["H (C-GEP)".into(), h[(1, 0)].to_string()],
        ],
    );
    println!("paper: G = 2, F = 8; C-GEP must match G.");
    (g[(1, 0)], f[(1, 0)], h[(1, 0)])
}

/// Table 1: the operand states read by G and by F, stated symbolically and
/// verified against instrumented executions. Returns true when all checks
/// pass.
pub fn table1(n: usize) -> bool {
    print_table(
        "Table 1: states read immediately before applying <i,j,k> (0-based state convention)",
        &["cell", "G reads state", "F reads state"],
        &[
            vec!["c[i,j]".into(), "k".into(), "k".into()],
            vec!["c[i,k]".into(), "k + [j>k]".into(), "π(j,k)".into()],
            vec!["c[k,j]".into(), "k + [i>k]".into(), "π(i,k)".into()],
            vec![
                "c[k,k]".into(),
                "k + [(i>k) ∨ (i=k ∧ j>k)]".into(),
                "δ(i,j,k)".into(),
            ],
        ],
    );
    let init = Matrix::from_fn(n, n, |i, j| (i * n + j) as i64 + 1);
    let t21 = check_theorem_2_1(&SumSpec, &init);
    let t22 = check_theorem_2_2(&SumSpec, &init);
    let tg = check_table1_g(&SumSpec, &init);
    println!("verified on n={n}, full Σ, order-revealing f:");
    println!(
        "  Theorem 2.1 (same update set, each once, increasing k): {:?}",
        t21.is_ok()
    );
    println!(
        "  Theorem 2.2 (F's operand states = π/δ):                {:?}",
        t22.is_ok()
    );
    println!(
        "  Table 1 column G (iterative states):                   {:?}",
        tg.is_ok()
    );
    t21.is_ok() && t22.is_ok() && tg.is_ok()
}

/// Table 2: the paper's machines plus the simulator configs we use for
/// them and the actual host.
pub fn table2() {
    let rows: Vec<Vec<String>> = gep_cachesim::table2_machines()
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.processors.to_string(),
                format!("{:.2} GHz", m.ghz),
                format!("{:.2}", m.peak_gflops),
                format!("{} KB {}-way B={}", m.l1.0 / 1024, m.l1.1, m.l1.2),
                format!("{} KB {}-way B={}", m.l2.0 / 1024, m.l2.1, m.l2.2),
                format!("{} GB", m.ram >> 30),
            ]
        })
        .collect();
    print_table(
        "Table 2: machines (reproduced as cache-simulator configurations)",
        &["model", "procs", "speed", "peak GFLOPS", "L1", "L2", "RAM"],
        &rows,
    );
    println!("this host: {}", crate::util::host_info());
}

/// §3: evaluates the span recurrences and the predicted `T₁/p + T∞`
/// speedups (the analytic side of Figure 12), then cross-checks the
/// recurrences against a *recorded* A/B/C/D execution.
///
/// Returns `(n, span_full, span_simple, span_mm, work)` rows and whether
/// the live cross-check passed.
#[allow(clippy::type_complexity)]
pub fn span_report(n: usize) -> (Vec<(usize, u64, u64, u64, u64)>, bool) {
    let out: Vec<(usize, u64, u64, u64, u64)> = (0..=n.trailing_zeros())
        .map(|q| {
            let m = 1usize << q;
            (
                m,
                // u128 recurrence values; far below u64::MAX at any
                // reportable n (work(2^13) = 2^39).
                span::span_full(m) as u64,
                span::span_simple(m) as u64,
                span::span_mm(m) as u64,
                span::work_full_sigma(m) as u64,
            )
        })
        .collect();
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|&(m, sf, ss, smm, w)| {
            vec![
                m.to_string(),
                sf.to_string(),
                ss.to_string(),
                smm.to_string(),
                w.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 3: span recurrences (units: base-case updates / recursion steps)",
        &[
            "n",
            "T∞ A/B/C/D (Θ(n log² n))",
            "T∞ naive (Θ(n^2.585))",
            "T∞ MM (Θ(n))",
            "work T₁",
        ],
        &rows,
    );
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&p| {
            let t1 = span::predicted_tp(n, 1);
            let tp = span::predicted_tp(n, p);
            vec![p.to_string(), format!("{:.2}", t1 as f64 / tp as f64)]
        })
        .collect();
    print_table(
        &format!("predicted speedup at n={n} (greedy bound T₁/p + T∞)"),
        &["p", "speedup"],
        &rows,
    );
    (out, span_live_check(64, 1))
}

/// Runs optimised I-GEP (the Figure 6 A/B/C/D engine) under the recorder
/// and compares the observed invocation counts against the §3 recurrences
/// evaluated by `gep_parallel::span`. Returns true when everything
/// matches (recursion kinds, base cases, and the full-Σ n³ update total).
pub fn span_live_check(n: usize, base: usize) -> bool {
    gep_obs::install(gep_obs::Recorder::counters_only());
    let mut c = Matrix::from_fn(n, n, |i, j| (i * n + j) as i64 + 1);
    gep_core::igep_opt(&SumSpec, &mut c, base);
    let rec = gep_obs::take().expect("recorder was installed");
    let want = span::abcd_counts_full(n, base);
    let checks: Vec<(&str, u64, u64)> = vec![
        ("A calls", rec.counter("abcd.a.calls"), want.a),
        ("B calls", rec.counter("abcd.b.calls"), want.b),
        ("C calls", rec.counter("abcd.c.calls"), want.c),
        ("D calls", rec.counter("abcd.d.calls"), want.d),
        (
            "base cases",
            rec.counter("abcd.base_cases"),
            span::base_cases_full(n, base),
        ),
        ("updates", rec.counter("abcd.updates"), (n * n * n) as u64),
    ];
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|&(what, got, expected)| {
            vec![
                what.to_string(),
                got.to_string(),
                expected.to_string(),
                if got == expected { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("live cross-check: recorded A/B/C/D run vs §3 recurrences (n={n}, base {base})"),
        &["quantity", "recorded", "predicted", ""],
        &rows,
    );
    let ok = checks.iter().all(|&(_, got, expected)| got == expected);
    println!("live cross-check: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// §2.2.2: measured peak live snapshots of reduced-space C-GEP vs the
/// paper's `n² + n` claim. Returns `(n, peak, bound)` rows.
pub fn space_report(sizes: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let mut c = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 17) as i64);
        let stats = cgep_reduced(&SumSpec, &mut c, 1);
        out.push((n, stats.peak_live_snapshots, stats.claimed_bound));
        rows.push(vec![
            n.to_string(),
            stats.peak_live_snapshots.to_string(),
            stats.claimed_bound.to_string(),
            format!(
                "{:.3}",
                stats.peak_live_snapshots as f64 / stats.claimed_bound as f64
            ),
            stats.saves.to_string(),
            stats.reads_from_cell.to_string(),
        ]);
    }
    print_table(
        "Section 2.2.2: reduced-space C-GEP — peak live snapshots vs the paper's n²+n",
        &[
            "n",
            "peak live",
            "n²+n",
            "ratio",
            "copy-on-destroy saves",
            "reads from live cell",
        ],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counterexample_values() {
        assert_eq!(counterexample(), (2, 8, 2));
    }

    #[test]
    fn table1_verifies() {
        assert!(table1(8));
    }

    #[test]
    fn space_report_within_bound() {
        for (n, peak, bound) in space_report(&[4, 8, 16]) {
            assert!(peak <= bound, "n={n}: {peak} > {bound}");
        }
    }
}
