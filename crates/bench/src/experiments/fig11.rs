//! Figure 11: square matrix multiplication — GEP (triple loop) vs
//! cache-oblivious I-GEP vs the cache-aware blocked baseline, in time and
//! in simulated cache misses.
//!
//! Paper shapes: baseline fastest (~1.5× I-GEP), I-GEP ~4–6× the triple
//! loop; **I-GEP incurs no more L1/L2 misses than the cache-aware code**
//! (its losses are instruction overhead, not cache behaviour).

use crate::util::{fmt_secs, gflops, print_table, timed_best};
use crate::workloads::rnd_matrix;
use gep_apps::matmul::matmul;
use gep_apps::reference::matmul_reference;
use gep_blaslike::dgemm;
use gep_cachesim::{AddressSpace, CacheModel, SharedCache, TrackedMatrix};
use gep_core::algebra::PlusTimesF64;
use gep_core::CellStore;
use gep_matrix::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// One timing measurement.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Row {
    /// Matrix side.
    pub n: usize,
    /// Naive triple loop (`ikj`, the "optimised GEP" baseline) seconds.
    pub gep_s: f64,
    /// I-GEP (direct divide-and-conquer, base 64) seconds.
    pub igep_s: f64,
    /// Cache-aware blocked `dgemm` seconds.
    pub blas_s: f64,
}

/// Timing sweep.
pub fn fig11_time(sizes: &[usize], reps: usize) -> Vec<Fig11Row> {
    // Tuned base size (tuning.json via `repro tune`, default 64).
    let base = gep_kernels::tuned_base_size("mm");
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let a = rnd_matrix(n, 61611 + n as u64);
        let b = rnd_matrix(n, 61612 + n as u64);
        let flops = 2.0 * (n as f64).powi(3);
        let (_, gep_s) = timed_best(reps, || matmul_reference(&a, &b));
        let (_, igep_s) = timed_best(reps, || matmul::<PlusTimesF64>(&a, &b, base));
        let (_, blas_s) = timed_best(reps, || {
            let mut c = Matrix::square(n, 0.0);
            dgemm(&mut c, &a, &b);
            c
        });
        out.push(Fig11Row {
            n,
            gep_s,
            igep_s,
            blas_s,
        });
        rows.push(vec![
            n.to_string(),
            format!("{} ({:.2} GF)", fmt_secs(gep_s), gflops(flops, gep_s)),
            format!("{} ({:.2} GF)", fmt_secs(igep_s), gflops(flops, igep_s)),
            format!("{} ({:.2} GF)", fmt_secs(blas_s), gflops(flops, blas_s)),
            format!("{:.2}x", gep_s / igep_s),
            format!("{:.2}x", igep_s / blas_s),
        ]);
    }
    print_table(
        "Figure 11 (time): square matrix multiplication (f64, C += A·B)",
        &[
            "n",
            "triple loop",
            &format!("I-GEP (base {base})"),
            "cache-aware dgemm",
            "loop/I-GEP",
            "I-GEP/dgemm",
        ],
        &rows,
    );
    println!("paper (Opteron): BLAS 78-83% peak, I-GEP 50-56%, GEP 9-13%.");
    out
}

/// Store-generic naive triple loop over tracked matrices.
fn mm_naive_tracked<C: CacheModel>(
    c: &mut TrackedMatrix<f64, C>,
    a: &mut TrackedMatrix<f64, C>,
    b: &mut TrackedMatrix<f64, C>,
) {
    let n = CellStore::<f64>::n(c);
    for i in 0..n {
        for k in 0..n {
            let u = a.read(i, k);
            for j in 0..n {
                let x = c.read(i, j);
                let v = b.read(k, j);
                c.write(i, j, x + u * v);
            }
        }
    }
}

/// Store-generic cache-aware tiled matmul (tile chosen from the L1 size —
/// this code *knows* the cache, unlike I-GEP).
fn mm_tiled_tracked<C: CacheModel>(
    c: &mut TrackedMatrix<f64, C>,
    a: &mut TrackedMatrix<f64, C>,
    b: &mut TrackedMatrix<f64, C>,
    tile: usize,
) {
    let n = CellStore::<f64>::n(c);
    for i0 in (0..n).step_by(tile) {
        for k0 in (0..n).step_by(tile) {
            for j0 in (0..n).step_by(tile) {
                for i in i0..(i0 + tile).min(n) {
                    for k in k0..(k0 + tile).min(n) {
                        let u = a.read(i, k);
                        for j in j0..(j0 + tile).min(n) {
                            let x = c.read(i, j);
                            let v = b.read(k, j);
                            c.write(i, j, x + u * v);
                        }
                    }
                }
            }
        }
    }
}

/// Store-generic direct I-GEP matrix multiplication (the `D`-only
/// quadrant recursion over three separate tracked matrices) — the fair
/// miss-count counterpart of [`matmul`], avoiding the embedding's 4×
/// footprint.
#[allow(clippy::too_many_arguments)]
fn mm_dac_tracked<C: CacheModel, L: gep_matrix::Layout>(
    c: &mut TrackedMatrix<f64, C, L>,
    a: &mut TrackedMatrix<f64, C, L>,
    b: &mut TrackedMatrix<f64, C, L>,
    ci: usize,
    cj: usize,
    kk: usize,
    s: usize,
) {
    if s == 1 {
        let x = c.read(ci, cj);
        let u = a.read(ci, kk);
        let v = b.read(kk, cj);
        c.write(ci, cj, x + u * v);
        return;
    }
    let h = s / 2;
    for (di, dj, dk) in [
        (0, 0, 0),
        (0, h, 0),
        (h, 0, 0),
        (h, h, 0),
        (0, 0, h),
        (0, h, h),
        (h, 0, h),
        (h, h, h),
    ] {
        mm_dac_tracked(c, a, b, ci + di, cj + dj, kk + dk, h);
    }
}

/// Miss counts on the simulated AMD Opteron 250 hierarchy (the Figure 11
/// machine): `(l1, l2)` per engine.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Misses {
    /// Matrix side.
    pub n: usize,
    /// Naive triple loop (L1, L2) misses.
    pub naive: (u64, u64),
    /// I-GEP via the GEP embedding (L1, L2) misses.
    pub igep: (u64, u64),
    /// Cache-aware tiled loop (L1, L2) misses.
    pub tiled: (u64, u64),
}

/// Runs the miss-count comparison.
pub fn fig11_misses(sizes: &[usize]) -> Vec<Fig11Misses> {
    let opteron = gep_cachesim::table2_machines()[1];
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let a = rnd_matrix(n, 3);
        let b = rnd_matrix(n, 4);

        #[allow(clippy::type_complexity)]
        let run_pair = |f: &mut dyn FnMut(
            &mut TrackedMatrix<f64, gep_cachesim::Hierarchy>,
            &mut TrackedMatrix<f64, gep_cachesim::Hierarchy>,
            &mut TrackedMatrix<f64, gep_cachesim::Hierarchy>,
        )| {
            let cache: SharedCache<gep_cachesim::Hierarchy> =
                Rc::new(RefCell::new(opteron.hierarchy()));
            let mut space = AddressSpace::new();
            // Stagger the three bases by odd line counts: back-to-back
            // power-of-two matrices would sit a multiple of the L1 way
            // size apart, aliasing the same sets — an allocator artefact
            // real systems avoid, applied to every engine equally.
            let mut tc = TrackedMatrix::new(Matrix::square(n, 0.0), cache.clone(), &mut space);
            space.alloc(3 * 64, 64);
            let mut ta = TrackedMatrix::new(a.clone(), cache.clone(), &mut space);
            space.alloc(5 * 64, 64);
            let mut tb = TrackedMatrix::new(b.clone(), cache.clone(), &mut space);
            f(&mut tc, &mut ta, &mut tb);
            let h = cache.borrow();
            (h.l1_stats().misses, h.l2_stats().misses)
        };

        let naive = run_pair(&mut |c, a, b| mm_naive_tracked(c, a, b));
        // L1 = 64 KB = 8192 doubles: a cache-aware tile of 32 keeps three
        // 32x32 tiles (3 KB) resident.
        let tiled = run_pair(&mut |c, a, b| mm_tiled_tracked(c, a, b, 32));
        // Cache-oblivious I-GEP: the direct D-only recursion over the
        // same three matrices, stored in the §4.2 bit-interleaved layout
        // (as the paper's implementation was).
        let igep_misses = {
            let cache: SharedCache<gep_cachesim::Hierarchy> =
                Rc::new(RefCell::new(opteron.hierarchy()));
            let mut space = AddressSpace::new();
            let layout = gep_matrix::MortonTiled { tile: 32.min(n) };
            let mut tc = TrackedMatrix::with_layout(
                Matrix::square(n, 0.0),
                cache.clone(),
                &mut space,
                layout,
            );
            space.alloc(3 * 64, 64);
            let mut ta = TrackedMatrix::with_layout(a.clone(), cache.clone(), &mut space, layout);
            space.alloc(5 * 64, 64);
            let mut tb = TrackedMatrix::with_layout(b.clone(), cache.clone(), &mut space, layout);
            mm_dac_tracked(&mut tc, &mut ta, &mut tb, 0, 0, 0, n);
            let h = cache.borrow();
            (h.l1_stats().misses, h.l2_stats().misses)
        };

        out.push(Fig11Misses {
            n,
            naive,
            igep: igep_misses,
            tiled,
        });
        rows.push(vec![
            n.to_string(),
            format!("{}/{}", naive.0, naive.1),
            format!("{}/{}", igep_misses.0, igep_misses.1),
            format!("{}/{}", tiled.0, tiled.1),
        ]);
    }
    print_table(
        "Figure 11 (misses): simulated AMD Opteron 250, L1/L2 misses",
        &["n", "triple loop", "I-GEP (direct)", "cache-aware tiled"],
        &rows,
    );
    println!("paper: I-GEP incurs fewer L1 and L2 misses than native BLAS.");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_holds_at_modest_size() {
        // In-cache sizes on big-L3 hosts leave the loop and I-GEP nearly
        // tied (see EXPERIMENTS.md); assert no-regression + the dgemm win,
        // with margin for timer noise.
        let r = fig11_time(&[512], 3)[0];
        assert!(
            r.igep_s < r.gep_s * 1.05,
            "I-GEP at least matches the naive loop: {:.1}ms vs {:.1}ms",
            r.igep_s * 1e3,
            r.gep_s * 1e3
        );
        assert!(r.blas_s < r.gep_s, "dgemm beats the naive loop");
    }

    #[test]
    fn igep_misses_at_most_tiled() {
        // At n = 128 the matrices exceed L1 (64 KB) but all fit L2, so
        // the discriminating level is L1.
        let m = fig11_misses(&[128])[0];
        assert!(
            m.igep.0 < m.naive.0 / 4,
            "I-GEP far below the naive loop in L1 misses: {:?} vs {:?}",
            m.igep,
            m.naive
        );
        // Our idealised tiled loop pays no packing cost (unlike real
        // BLAS), so "same league" is the reproducible claim here; see
        // EXPERIMENTS.md.
        assert!(
            m.igep.0 <= m.tiled.0 * 3,
            "I-GEP L1 misses in the tiled code's league: {:?} vs {:?}",
            m.igep,
            m.tiled
        );
        assert!(
            m.igep.1 <= m.tiled.1,
            "equal-or-fewer L2 misses: {:?} vs {:?}",
            m.igep,
            m.tiled
        );
    }
}
