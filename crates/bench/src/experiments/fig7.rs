//! Figure 7: out-of-core Floyd–Warshall — I/O wait time of GEP, I-GEP and
//! C-GEP on the simulated STXXL stack.
//!
//! 7(a): fixed `n` and `B`, sweep the cache size `M`.
//! 7(b): fixed `n` and `M`, sweep `B` (i.e. `M/B`).
//!
//! Paper shapes to reproduce: GEP's wait is orders of magnitude above
//! I-GEP/C-GEP and flat in `M`; I-GEP/C-GEP improve as `M` grows; wait
//! grows roughly linearly with `M/B` at fixed `M` (blocks shrink, so
//! transfers stop amortising seeks).

use crate::util::print_table;
use gep_apps::floyd_warshall::FwSpec;
use gep_core::{cgep_full_with, cgep_reduced, gep_iterative, igep};
use gep_extmem::{DiskProfile, ExtArena, ExtMatrix, SharedArena};
use gep_matrix::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// Which engine an out-of-core run used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Iterative GEP (Figure 1).
    Gep,
    /// Cache-oblivious I-GEP (Figure 2).
    IGep,
    /// C-GEP with four full snapshot matrices (all on disk).
    CGepFull,
    /// C-GEP with the liveness-managed snapshot store (snapshots in RAM).
    CGepReduced,
}

impl Engine {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Gep => "GEP",
            Engine::IGep => "I-GEP",
            Engine::CGepFull => "C-GEP (4n²)",
            Engine::CGepReduced => "C-GEP (n²+n)",
        }
    }

    /// Counter-name fragment: recorded I/O lands under `io.<slug>.*`.
    pub fn slug(&self) -> &'static str {
        match self {
            Engine::Gep => "gep",
            Engine::IGep => "igep",
            Engine::CGepFull => "cgep4",
            Engine::CGepReduced => "cgepr",
        }
    }
}

/// One measured out-of-core run.
#[derive(Clone, Copy, Debug)]
pub struct OocRun {
    /// Engine used.
    pub engine: Engine,
    /// Page-cache bytes.
    pub m_bytes: u64,
    /// Page bytes.
    pub b_bytes: u64,
    /// Modelled I/O wait (seconds), excluding the input-loading phase.
    pub wait_s: f64,
    /// Block transfers, excluding loading.
    pub transfers: u64,
}

fn shared(m_bytes: u64, b_bytes: u64) -> SharedArena<i64> {
    Rc::new(RefCell::new(ExtArena::new(
        m_bytes,
        b_bytes,
        DiskProfile::fujitsu_map3735nc(),
    )))
}

/// Runs one engine out-of-core and measures its post-load I/O.
pub fn run_ooc(engine: Engine, input: &Matrix<i64>, m_bytes: u64, b_bytes: u64) -> OocRun {
    let spec = FwSpec::<i64>::new();
    let arena = shared(m_bytes, b_bytes);
    let mut c = ExtMatrix::from_matrix(arena.clone(), input);
    // C-GEP's snapshot matrices also live on disk, initialised to the
    // input (Figure 3); their loading is part of the algorithm's overhead,
    // so it is *not* subtracted.
    let baseline = arena.borrow().io_stats();
    match engine {
        Engine::Gep => gep_iterative(&spec, &mut c),
        Engine::IGep => igep(&spec, &mut c, 1),
        Engine::CGepFull => {
            let mut u0 = ExtMatrix::from_matrix(arena.clone(), input);
            let mut u1 = ExtMatrix::from_matrix(arena.clone(), input);
            let mut v0 = ExtMatrix::from_matrix(arena.clone(), input);
            let mut v1 = ExtMatrix::from_matrix(arena.clone(), input);
            cgep_full_with(&spec, &mut c, &mut u0, &mut u1, &mut v0, &mut v1, 1, false);
        }
        Engine::CGepReduced => {
            cgep_reduced(&spec, &mut c, 1);
        }
    }
    let end = arena.borrow().io_stats();
    if gep_obs::enabled() {
        gep_extmem::IoStats {
            block_reads: end.block_reads - baseline.block_reads,
            block_writes: end.block_writes - baseline.block_writes,
            seeks: end.seeks - baseline.seeks,
            bytes: end.bytes - baseline.bytes,
            retries: end.retries - baseline.retries,
            wait_s: end.wait_s - baseline.wait_s,
        }
        .publish(engine.slug());
    }
    OocRun {
        engine,
        m_bytes,
        b_bytes,
        wait_s: end.wait_s - baseline.wait_s,
        transfers: end.transfers() - baseline.transfers(),
    }
}

/// Figure 7(a): sweep `M` at fixed `n`, `B`.
pub fn fig7a(n: usize, b_bytes: u64, m_fractions: &[f64]) -> Vec<OocRun> {
    let input = crate::workloads::random_dist_matrix(n, 61607);
    let matrix_bytes = (n * n * 8) as u64;
    let mut runs = vec![];
    let mut rows = vec![];
    for &frac in m_fractions {
        let m_bytes = ((matrix_bytes as f64 * frac) as u64).max(4 * b_bytes);
        let mut row = vec![format!("{frac:.3}"), format!("{} KiB", m_bytes / 1024)];
        for eng in [
            Engine::Gep,
            Engine::IGep,
            Engine::CGepFull,
            Engine::CGepReduced,
        ] {
            let r = run_ooc(eng, &input, m_bytes, b_bytes);
            row.push(format!("{:.2}", r.wait_s));
            runs.push(r);
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 7(a): out-of-core FW, n={n}, B={b_bytes} B — I/O wait (modelled s) vs M"),
        &["M/matrix", "M", "GEP", "I-GEP", "C-GEP 4n²", "C-GEP n²+n"],
        &rows,
    );
    runs
}

/// Figure 7(b): sweep `B` (i.e. `M/B`) at fixed `n`, `M`.
pub fn fig7b(n: usize, m_bytes: u64, b_list: &[u64]) -> Vec<OocRun> {
    let input = crate::workloads::random_dist_matrix(n, 61617);
    let mut runs = vec![];
    let mut rows = vec![];
    for &b in b_list {
        let mut row = vec![(m_bytes / b).to_string(), format!("{b} B")];
        for eng in [
            Engine::Gep,
            Engine::IGep,
            Engine::CGepFull,
            Engine::CGepReduced,
        ] {
            let r = run_ooc(eng, &input, m_bytes, b);
            row.push(format!("{:.2}", r.wait_s));
            runs.push(r);
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 7(b): out-of-core FW, n={n}, M={} KiB — I/O wait (modelled s) vs M/B",
            m_bytes / 1024
        ),
        &["M/B", "B", "GEP", "I-GEP", "C-GEP 4n²", "C-GEP n²+n"],
        &rows,
    );
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale shape check of the Figure 7 claims.
    #[test]
    fn gep_dominates_and_igep_improves_with_m() {
        let n = 64;
        let input = crate::workloads::random_dist_matrix(n, 1);
        let b = 128; // tall cache: 16 elems/page, B² = 256 elems << M
        let small = run_ooc(Engine::IGep, &input, 8 * 1024, b);
        let big = run_ooc(Engine::IGep, &input, 16 * 1024, b);
        assert!(big.wait_s < small.wait_s, "I-GEP improves with M");
        let gep_small = run_ooc(Engine::Gep, &input, 8 * 1024, b);
        let gep_big = run_ooc(Engine::Gep, &input, 16 * 1024, b);
        assert!(
            gep_small.wait_s > 3.0 * small.wait_s,
            "GEP waits much longer than I-GEP"
        );
        // GEP barely improves with M (less than 30% for 2x cache).
        assert!(gep_big.wait_s > 0.7 * gep_small.wait_s);
    }

    #[test]
    fn cgep_out_of_core_produces_correct_result() {
        let n = 32;
        let input = crate::workloads::random_dist_matrix(n, 2);
        let spec = FwSpec::<i64>::new();
        let arena = shared(4096, 128);
        let mut c = ExtMatrix::from_matrix(arena.clone(), &input);
        let mut u0 = ExtMatrix::from_matrix(arena.clone(), &input);
        let mut u1 = ExtMatrix::from_matrix(arena.clone(), &input);
        let mut v0 = ExtMatrix::from_matrix(arena.clone(), &input);
        let mut v1 = ExtMatrix::from_matrix(arena.clone(), &input);
        cgep_full_with(&spec, &mut c, &mut u0, &mut u1, &mut v0, &mut v1, 1, false);
        let mut oracle = input.clone();
        gep_iterative(&spec, &mut oracle);
        assert_eq!(c.to_matrix(), oracle);
    }
}
