//! Figure 9: I-GEP vs both C-GEP variants in-core — wall time and L2
//! misses.
//!
//! Paper shapes: both C-GEP variants are slower than I-GEP and incur more
//! L2 misses (they write four snapshot matrices); the `4n²` variant beats
//! the reduced-space variant; the relative overhead shrinks as `n` grows.

use crate::util::{fmt_secs, print_table, timed_best};
use crate::workloads::random_dist_matrix;
use gep_apps::floyd_warshall::FwSpec;
use gep_cachesim::{AddressSpace, TrackedMatrix};
use gep_core::{cgep_full, cgep_reduced, igep};
use std::cell::RefCell;
use std::rc::Rc;

/// One (n, engine) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Row {
    /// Matrix side.
    pub n: usize,
    /// I-GEP seconds.
    pub igep_s: f64,
    /// C-GEP 4n² seconds.
    pub cgep4_s: f64,
    /// C-GEP reduced seconds.
    pub cgepr_s: f64,
}

/// Timing sweep (all engines run through the same store-generic code path
/// with base case 16, so the comparison isolates the snapshot overhead).
pub fn fig9_time(sizes: &[usize], reps: usize) -> Vec<Fig9Row> {
    let spec = FwSpec::<i64>::new();
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let input = random_dist_matrix(n, 61609 + n as u64);
        let (_, igep_s) = timed_best(reps, || {
            let mut c = input.clone();
            igep(&spec, &mut c, 16);
            c
        });
        let (_, cgep4_s) = timed_best(reps, || {
            let mut c = input.clone();
            cgep_full(&spec, &mut c, 16);
            c
        });
        let (_, cgepr_s) = timed_best(reps, || {
            let mut c = input.clone();
            cgep_reduced(&spec, &mut c, 16);
            c
        });
        out.push(Fig9Row {
            n,
            igep_s,
            cgep4_s,
            cgepr_s,
        });
        rows.push(vec![
            n.to_string(),
            fmt_secs(igep_s),
            format!("{} ({:.2}x)", fmt_secs(cgep4_s), cgep4_s / igep_s),
            format!("{} ({:.2}x)", fmt_secs(cgepr_s), cgepr_s / igep_s),
        ]);
    }
    print_table(
        "Figure 9 (time): I-GEP vs C-GEP variants, in-core FW",
        &["n", "I-GEP", "C-GEP 4n²", "C-GEP n²+n"],
        &rows,
    );
    println!("paper: C-GEP slower than I-GEP; 4n² variant beats n²+n variant.");
    out
}

/// L2 miss counts on the simulated Intel Xeon hierarchy.
pub fn fig9_misses(sizes: &[usize]) -> Vec<(usize, u64, u64)> {
    let spec = FwSpec::<i64>::new();
    let xeon = gep_cachesim::table2_machines()[0];
    let mut out = vec![];
    let mut rows = vec![];
    for &n in sizes {
        let input = random_dist_matrix(n, 61609);
        // I-GEP.
        let cache = Rc::new(RefCell::new(xeon.hierarchy()));
        let mut space = AddressSpace::new();
        let mut c = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        igep(&spec, &mut c, 16);
        let igep_l2 = cache.borrow().l2_stats().misses;

        // C-GEP 4n² with all five matrices through the same hierarchy.
        let cache = Rc::new(RefCell::new(xeon.hierarchy()));
        let mut space = AddressSpace::new();
        let mut c = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        let mut u0 = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        let mut u1 = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        let mut v0 = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        let mut v1 = TrackedMatrix::new(input.clone(), cache.clone(), &mut space);
        gep_core::cgep_full_with(&spec, &mut c, &mut u0, &mut u1, &mut v0, &mut v1, 16, false);
        let cgep_l2 = cache.borrow().l2_stats().misses;

        out.push((n, igep_l2, cgep_l2));
        rows.push(vec![
            n.to_string(),
            igep_l2.to_string(),
            format!(
                "{} ({:.2}x)",
                cgep_l2,
                cgep_l2 as f64 / igep_l2.max(1) as f64
            ),
        ]);
    }
    print_table(
        "Figure 9 (L2 misses): simulated Intel Xeon hierarchy",
        &["n", "I-GEP L2 misses", "C-GEP 4n² L2 misses"],
        &rows,
    );
    out
}

/// Sanity: C-GEP engines still compute FW correctly at bench sizes.
pub fn verify_engines(n: usize) -> bool {
    let spec = FwSpec::<i64>::new();
    let input = random_dist_matrix(n, 5);
    let mut a = input.clone();
    igep(&spec, &mut a, 16);
    let mut b = input.clone();
    cgep_full(&spec, &mut b, 16);
    let mut c = input.clone();
    cgep_reduced(&spec, &mut c, 16);
    let mut g = input.clone();
    gep_core::gep_iterative(&spec, &mut g);
    a == g && b == g && c == g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_verified() {
        assert!(verify_engines(64));
    }

    #[test]
    fn cgep_overhead_shape() {
        let rows = fig9_time(&[64], 1);
        let r = rows[0];
        assert!(r.cgep4_s > r.igep_s, "C-GEP must cost more than I-GEP");
    }

    #[test]
    fn cgep_misses_more_than_igep() {
        let rows = fig9_misses(&[64]);
        let (_, igep, cgep) = rows[0];
        assert!(cgep > igep);
    }
}
