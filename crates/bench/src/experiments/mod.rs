//! One module per reproduced figure/table.

pub mod algebras;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod layout;
pub mod lemma;
pub mod misses;
pub mod profile;
pub mod resume;
pub mod serve;
pub mod slo;
pub mod theory;
pub mod tune;
