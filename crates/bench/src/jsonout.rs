//! Machine-readable result emission for the `repro` driver.
//!
//! With `--json`, each experiment writes a `BENCH_<experiment>.json`
//! file (schema: [`gep_obs::bench`]) into [`OUT_DIR`]; `repro validate`
//! re-parses and schema-checks every such file, so CI can reject
//! malformed output before archiving it.

use gep_obs::{BenchDoc, Json};
use std::path::{Path, PathBuf};

/// Directory (relative to the working directory) receiving the
/// `BENCH_*.json` files.
pub const OUT_DIR: &str = "bench_json";

/// The default output directory as a path.
pub fn out_dir() -> PathBuf {
    PathBuf::from(OUT_DIR)
}

/// Writes `doc` into [`OUT_DIR`], printing the path (or the error —
/// emission failure must not abort the measurement run).
pub fn emit(doc: &BenchDoc) {
    match doc.write_to(&out_dir()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("error: could not write {}: {e}", doc.filename()),
    }
}

/// Parses and schema-checks every `BENCH_*.json` under `dir`. Returns the
/// number of valid files, or a message naming the first offender.
pub fn validate_all(dir: &Path) -> Result<usize, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with("BENCH_") && f.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", dir.display()));
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        gep_obs::bench::validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("ok {}", path.display());
    }
    Ok(paths.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_all_accepts_emitted_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("gep_bench_jsonout_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut doc = BenchDoc::new("jsonout_test", "test doc", true);
        doc.row(vec![("n", Json::Int(8))]);
        doc.write_to(&dir).expect("write");
        assert_eq!(validate_all(&dir), Ok(1));
        std::fs::write(dir.join("BENCH_broken.json"), "{not json").unwrap();
        assert!(validate_all(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_all_requires_at_least_one_file() {
        let dir = std::env::temp_dir().join("gep_bench_jsonout_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(validate_all(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
