//! The repo-root `BENCH_trajectory.json` — an append-style record of bench
//! snapshots across PRs.
//!
//! Every `repro all --json` (and every `repro compare`) appends one entry
//! summarizing the current `bench_json/` output, so the repo carries its
//! own measurement history: schema-versioned, validated by
//! `repro validate`, and diffable in review like any other text file.
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "kind": "gep-bench-trajectory",
//!   "entries": [
//!     { "seq": 1, "unix_time": 1754500000, "host": "...", "quick": true,
//!       "source": "all",
//!       "metrics": { "fig8.n=512.gep_s": 0.51, ... } },
//!     ...
//!   ]
//! }
//! ```
//!
//! Metrics are the flattened numeric fields of every `BENCH_*.json` row,
//! keyed `<experiment>.<row-identity>.<field>` — the same row identity the
//! [`compare`](crate::compare) gate matches on.

use gep_obs::Json;
use std::path::Path;

/// Trajectory file schema version.
pub const TRAJECTORY_VERSION: i64 = 1;
/// The `kind` discriminator (distinguishes the file from BENCH_* docs).
pub const TRAJECTORY_KIND: &str = "gep-bench-trajectory";
/// Filename at the repository root.
pub const TRAJECTORY_FILE: &str = "BENCH_trajectory.json";

/// Flattens one parsed `BENCH_*.json` document into `(key, value)` metric
/// pairs. Strings and sweep parameters form the key; every other numeric
/// field (including the non-finite gauge sentinels) becomes a value.
pub fn flatten_doc(doc: &Json) -> Vec<(String, Json)> {
    let Some(experiment) = doc.get("experiment").and_then(Json::as_str) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let Some(rows) = doc.get("rows").and_then(Json::as_arr) {
        for row in rows {
            let Json::Obj(fields) = row else { continue };
            let identity: Vec<String> = fields
                .iter()
                .filter_map(|(k, v)| match v {
                    Json::Str(s) => Some(format!("{k}={s}")),
                    Json::Int(i) if crate::compare::is_param_key(k) => Some(format!("{k}={i}")),
                    _ => None,
                })
                .collect();
            let prefix = if identity.is_empty() {
                experiment.to_string()
            } else {
                format!("{experiment}.{}", identity.join(","))
            };
            for (k, v) in fields {
                let numeric = match v {
                    Json::Str(_) => None,
                    Json::Int(_) if crate::compare::is_param_key(k) => None,
                    Json::Bool(b) => Some(Json::Int(*b as i64)),
                    other if other.as_gauge().is_some() => Some(other.clone()),
                    _ => None,
                };
                if let Some(n) = numeric {
                    out.push((format!("{prefix}.{k}"), n));
                }
            }
        }
    }
    for section in ["counters", "gauges"] {
        if let Some(Json::Obj(fields)) = doc.get(section) {
            for (k, v) in fields {
                if v.as_gauge().is_some() {
                    out.push((format!("{experiment}.{k}"), v.clone()));
                }
            }
        }
    }
    out
}

/// Builds one trajectory entry from every `BENCH_*.json` in `bench_dir`.
pub fn entry_from_dir(
    bench_dir: &Path,
    source: &str,
    quick: bool,
    host: &str,
) -> Result<Json, String> {
    let entries = std::fs::read_dir(bench_dir)
        .map_err(|e| format!("cannot read {}: {e}", bench_dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.starts_with("BENCH_") && f.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut metrics: Vec<(String, Json)> = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        metrics.extend(flatten_doc(&doc));
    }
    if metrics.is_empty() {
        return Err(format!(
            "no BENCH_*.json metrics under {}",
            bench_dir.display()
        ));
    }
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    Ok(Json::obj(vec![
        ("seq", Json::Int(0)), // assigned by append
        ("unix_time", Json::Int(unix_time)),
        ("host", Json::Str(host.to_string())),
        ("quick", Json::Bool(quick)),
        ("source", Json::Str(source.to_string())),
        ("metrics", Json::Obj(metrics.into_iter().collect())),
    ]))
}

fn empty_trajectory() -> Json {
    Json::obj(vec![
        ("schema_version", Json::Int(TRAJECTORY_VERSION)),
        ("kind", Json::Str(TRAJECTORY_KIND.to_string())),
        ("entries", Json::Arr(Vec::new())),
    ])
}

/// Appends `entry` to the trajectory file at `path` (created if missing),
/// assigning the next `seq`. Returns the assigned sequence number.
pub fn append(path: &Path, entry: Json) -> Result<i64, String> {
    let mut doc = if path.exists() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        doc
    } else {
        empty_trajectory()
    };
    let Json::Obj(fields) = &mut doc else {
        unreachable!("validate guarantees an object");
    };
    let entries = fields
        .iter_mut()
        .find(|(k, _)| k == "entries")
        .map(|(_, v)| v)
        .expect("validate guarantees entries");
    let Json::Arr(items) = entries else {
        unreachable!("validate guarantees an array");
    };
    let seq = items
        .iter()
        .filter_map(|e| e.get("seq").and_then(Json::as_i64))
        .max()
        .unwrap_or(0)
        + 1;
    let Json::Obj(mut entry_fields) = entry else {
        return Err("trajectory entry must be an object".into());
    };
    for (k, v) in &mut entry_fields {
        if k == "seq" {
            *v = Json::Int(seq);
        }
    }
    items.push(Json::Obj(entry_fields));
    let mut text = String::new();
    render(&doc, &mut text);
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(seq)
}

/// One entry per line, so the file diffs append-only in review.
fn render(doc: &Json, out: &mut String) {
    let Json::Obj(fields) = doc else {
        doc.write_into(out);
        return;
    };
    out.push_str("{\n");
    for (idx, (k, v)) in fields.iter().enumerate() {
        out.push_str("  ");
        Json::Str(k.clone()).write_into(out);
        out.push_str(": ");
        match (k.as_str(), v) {
            ("entries", Json::Arr(items)) => {
                out.push_str("[\n");
                for (eidx, item) in items.iter().enumerate() {
                    out.push_str("    ");
                    item.write_into(out);
                    if eidx + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str("  ]");
            }
            _ => v.write_into(out),
        }
        if idx + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
}

/// Validates a trajectory document's envelope.
pub fn validate(doc: &Json) -> Result<(), String> {
    if !doc.is_obj() {
        return Err("trajectory is not a JSON object".into());
    }
    match doc.get("schema_version").and_then(Json::as_i64) {
        Some(TRAJECTORY_VERSION) => {}
        Some(v) => {
            return Err(format!(
                "trajectory schema_version {v} != {TRAJECTORY_VERSION}"
            ))
        }
        None => return Err("missing integer schema_version".into()),
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(TRAJECTORY_KIND) => {}
        other => return Err(format!("kind {other:?} != {TRAJECTORY_KIND:?}")),
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries array")?;
    let mut last_seq = 0;
    for (idx, entry) in entries.iter().enumerate() {
        if !entry.is_obj() {
            return Err(format!("entries[{idx}] is not an object"));
        }
        let seq = entry
            .get("seq")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("entries[{idx}] missing integer seq"))?;
        if seq <= last_seq {
            return Err(format!(
                "entries[{idx}].seq {seq} not strictly increasing (prev {last_seq})"
            ));
        }
        last_seq = seq;
        entry
            .get("unix_time")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("entries[{idx}] missing integer unix_time"))?;
        entry
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entries[{idx}] missing string source"))?;
        entry
            .get("quick")
            .and_then(|q| q.as_bool())
            .ok_or_else(|| format!("entries[{idx}] missing boolean quick"))?;
        let Some(Json::Obj(metrics)) = entry.get("metrics") else {
            return Err(format!("entries[{idx}] missing metrics object"));
        };
        for (k, v) in metrics {
            if v.as_gauge().is_none() {
                return Err(format!("entries[{idx}].metrics.{k} is not numeric: {v}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_obs::BenchDoc;

    fn mkdoc() -> BenchDoc {
        let mut d = BenchDoc::new("fig8", "t", true);
        d.row(vec![
            ("n", Json::Int(512)),
            ("gep_s", Json::Float(0.5)),
            ("engine", Json::Str("igep".into())),
        ]);
        d.counter("cache.l2.misses", 7);
        d.gauge("fit.c", 2.5);
        d
    }

    #[test]
    fn flatten_keys_rows_by_identity() {
        let pairs = flatten_doc(&mkdoc().to_json());
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"fig8.n=512,engine=igep.gep_s"), "{keys:?}");
        assert!(keys.contains(&"fig8.cache.l2.misses"), "{keys:?}");
        assert!(keys.contains(&"fig8.fit.c"), "{keys:?}");
        // Identity fields are in the key, not duplicated as metrics.
        assert!(!keys.iter().any(|k| k.ends_with(".n")), "{keys:?}");
    }

    #[test]
    fn append_assigns_increasing_seq_and_validates() {
        let dir = std::env::temp_dir().join("gep_bench_trajectory_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        mkdoc().write_to(&dir.join("bench_json")).unwrap();
        let path = dir.join(TRAJECTORY_FILE);
        let entry = || {
            entry_from_dir(&dir.join("bench_json"), "all", true, "test host")
                .expect("bench dir has metrics")
        };
        assert_eq!(append(&path, entry()), Ok(1));
        assert_eq!(append(&path, entry()), Ok(2));
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate(&doc).expect("written trajectory validates");
        assert_eq!(doc.get("entries").unwrap().as_arr().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_rejects_broken_trajectories() {
        validate(&empty_trajectory()).expect("fresh file is valid");
        let cases = [
            ("not object", Json::Int(1)),
            (
                "bad kind",
                Json::obj(vec![
                    ("schema_version", Json::Int(1)),
                    ("kind", Json::Str("other".into())),
                    ("entries", Json::Arr(vec![])),
                ]),
            ),
            (
                "non-increasing seq",
                Json::obj(vec![
                    ("schema_version", Json::Int(1)),
                    ("kind", Json::Str(TRAJECTORY_KIND.into())),
                    (
                        "entries",
                        Json::Arr(vec![
                            Json::obj(vec![
                                ("seq", Json::Int(2)),
                                ("unix_time", Json::Int(0)),
                                ("host", Json::Str("h".into())),
                                ("quick", Json::Bool(true)),
                                ("source", Json::Str("all".into())),
                                ("metrics", Json::obj(vec![("m", Json::Int(1))])),
                            ]),
                            Json::obj(vec![
                                ("seq", Json::Int(2)),
                                ("unix_time", Json::Int(0)),
                                ("host", Json::Str("h".into())),
                                ("quick", Json::Bool(true)),
                                ("source", Json::Str("all".into())),
                                ("metrics", Json::obj(vec![("m", Json::Int(1))])),
                            ]),
                        ]),
                    ),
                ]),
            ),
        ];
        for (label, doc) in cases {
            assert!(validate(&doc).is_err(), "{label} should fail");
        }
    }

    #[test]
    fn entry_requires_metrics() {
        let dir = std::env::temp_dir().join("gep_bench_trajectory_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(entry_from_dir(&dir, "all", true, "h").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
