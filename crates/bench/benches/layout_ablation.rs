//! Ablation for the §4.2 bit-interleaved layout:
//!
//! * the conversion cost the paper charges to its reported times
//!   (row-major → Morton-tiled → row-major), and
//! * tile-access locality: scanning aligned tiles of a Morton-tiled
//!   matrix (contiguous) vs the same tiles of a row-major matrix
//!   (strided).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_bench::workloads::rnd_matrix;
use gep_matrix::TiledMatrix;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout_ablation");
    g.sample_size(20);
    for n in [256usize, 1024] {
        let m = rnd_matrix(n, 17);
        let tile = 64.min(n);
        g.bench_function(BenchmarkId::new("convert_roundtrip", n), |bch| {
            bch.iter(|| {
                let t = TiledMatrix::from_matrix(&m, tile);
                black_box(t.to_matrix()[(0, 0)])
            })
        });
        let tiled = TiledMatrix::from_matrix(&m, tile);
        let tiles = n / tile;
        g.bench_function(BenchmarkId::new("tile_scan_morton", n), |bch| {
            bch.iter(|| {
                let mut acc = 0.0;
                for bi in 0..tiles {
                    for bj in 0..tiles {
                        for &v in tiled.tile_slice(bi, bj) {
                            acc += v;
                        }
                    }
                }
                black_box(acc)
            })
        });
        g.bench_function(BenchmarkId::new("tile_scan_rowmajor", n), |bch| {
            bch.iter(|| {
                let mut acc = 0.0;
                for bi in 0..tiles {
                    for bj in 0..tiles {
                        for r in 0..tile {
                            let row = &m.row(bi * tile + r)[bj * tile..(bj + 1) * tile];
                            for &v in row {
                                acc += v;
                            }
                        }
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
