//! Criterion bench for Figure 9: I-GEP vs both C-GEP variants
//! (all through the same store-generic engines, base case 16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::{cgep_full, cgep_reduced, igep};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = FwSpec::<i64>::new();
    let mut g = c.benchmark_group("fig9_cgep_overhead");
    g.sample_size(10);
    for n in [64usize, 128, 256] {
        let input = random_dist_matrix(n, 9);
        g.bench_with_input(BenchmarkId::new("igep", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep(&spec, &mut m, 16);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("cgep_4n2", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                cgep_full(&spec, &mut m, 16);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("cgep_reduced", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                cgep_reduced(&spec, &mut m, 16);
                black_box(m[(0, 0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
