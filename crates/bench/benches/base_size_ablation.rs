//! Ablation: the §4.2 base-size tuning — how the iterative-kernel
//! threshold affects optimised I-GEP (the paper found 128 best on Xeon,
//! 64 on Opteron; recursing to single elements is markedly slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::igep_opt;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("base_size_ablation");
    g.sample_size(10);
    let n = 512;
    let input = random_dist_matrix(n, 16);
    for base in [1usize, 4, 16, 64, 128, 256] {
        g.bench_function(BenchmarkId::new("fw_igep", base), |bch| {
            bch.iter(|| {
                let mut m = input.clone();
                igep_opt(&FwSpec::<i64>::new(), &mut m, base);
                black_box(m[(0, 0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
