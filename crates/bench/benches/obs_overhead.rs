//! Instrumentation overhead: n = 512 I-GEP with the recorder disabled
//! (the default — every hook is one relaxed atomic load), counters-only,
//! and full span recording.
//!
//! The acceptance bar for the observability layer is that `disabled` is
//! indistinguishable from the pre-instrumentation baseline; the other two
//! configurations price the opt-in modes. The `disabled_paths` group
//! guards the same bar for the newer hooks one call at a time: a
//! disabled `hist_record` must stay one relaxed load, and a running
//! sampler with no recorder installed must not slow the solve (it only
//! touches the sink from its own thread).

use criterion::{criterion_group, criterion_main, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::igep_opt;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = FwSpec::<i64>::new();
    let n = 512;
    let base = 64;
    let input = random_dist_matrix(n, 8);
    let mut g = c.benchmark_group("obs_overhead_igep512");
    g.sample_size(10);
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            black_box(m[(0, 0)])
        })
    });
    g.bench_function("counters", |b| {
        b.iter(|| {
            gep_obs::install(gep_obs::Recorder::counters_only());
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            let rec = gep_obs::take().expect("recorder was installed");
            black_box((m[(0, 0)], rec.counter("abcd.base_cases")))
        })
    });
    g.bench_function("spans", |b| {
        b.iter(|| {
            gep_obs::install(gep_obs::Recorder::new());
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            let rec = gep_obs::take().expect("recorder was installed");
            black_box((m[(0, 0)], rec.spans.len()))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("obs_overhead_disabled_paths");
    // A disabled hist_record is the hot-leaf fast path: price it alone,
    // at call granularity.
    g.bench_function("hist_record_disabled", |b| {
        assert!(!gep_obs::enabled(), "recorder must be uninstalled here");
        b.iter(|| gep_obs::hist_record(black_box("kernel.leaf_ns"), black_box(42)))
    });
    g.bench_function("gauge_set_disabled", |b| {
        assert!(!gep_obs::enabled(), "recorder must be uninstalled here");
        b.iter(|| gep_obs::gauge_set(black_box("progress.pct"), black_box(1.0)))
    });
    // A live sampler without an installed recorder: the solve must run at
    // `disabled` speed while the sampler thread idles.
    g.bench_function("igep512_sampler_no_recorder", |b| {
        let path =
            std::env::temp_dir().join(format!("gep-obs-overhead-{}.jsonl", std::process::id()));
        let sampler =
            gep_obs::Sampler::start(gep_obs::SamplerConfig::new(&path)).expect("start sampler");
        b.iter(|| {
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            black_box(m[(0, 0)])
        });
        sampler.stop();
        let _ = std::fs::remove_file(path);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
