//! Instrumentation overhead: n = 512 I-GEP with the recorder disabled
//! (the default — every hook is one relaxed atomic load), counters-only,
//! and full span recording.
//!
//! The acceptance bar for the observability layer is that `disabled` is
//! indistinguishable from the pre-instrumentation baseline; the other two
//! configurations price the opt-in modes.

use criterion::{criterion_group, criterion_main, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::igep_opt;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = FwSpec::<i64>::new();
    let n = 512;
    let base = 64;
    let input = random_dist_matrix(n, 8);
    let mut g = c.benchmark_group("obs_overhead_igep512");
    g.sample_size(10);
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            black_box(m[(0, 0)])
        })
    });
    g.bench_function("counters", |b| {
        b.iter(|| {
            gep_obs::install(gep_obs::Recorder::counters_only());
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            let rec = gep_obs::take().expect("recorder was installed");
            black_box((m[(0, 0)], rec.counter("abcd.base_cases")))
        })
    });
    g.bench_function("spans", |b| {
        b.iter(|| {
            gep_obs::install(gep_obs::Recorder::new());
            let mut m = input.clone();
            igep_opt(&spec, &mut m, base);
            let rec = gep_obs::take().expect("recorder was installed");
            black_box((m[(0, 0)], rec.spans.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
