//! Criterion bench: simple-DP (parenthesis problem) — diagonal-order loop
//! vs the cache-oblivious cross recursion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::simple_dp::{solve, solve_iterative};
use gep_matrix::Matrix;
use std::hint::black_box;

fn base(n: usize) -> Matrix<f64> {
    let mut c = Matrix::square(n + 1, 0.0);
    let mut s = 1u64;
    for i in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        c[(i, i + 1)] = (s % 500) as f64 / 50.0;
    }
    c
}

fn w(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 101) as f64 / 10.0
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simple_dp");
    g.sample_size(10);
    for n in [128usize, 256, 512] {
        let init = base(n);
        g.bench_with_input(BenchmarkId::new("iterative", n), &init, |b, init| {
            b.iter(|| {
                let mut m = init.clone();
                solve_iterative(&mut m, &w);
                black_box(m[(0, n)])
            })
        });
        g.bench_with_input(BenchmarkId::new("cache_oblivious", n), &init, |b, init| {
            b.iter(|| {
                let mut m = init.clone();
                solve(&mut m, &w);
                black_box(m[(0, n)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
