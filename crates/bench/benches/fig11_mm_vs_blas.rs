//! Criterion bench for Figure 11: matrix multiplication — triple loop vs
//! I-GEP (direct recursion and GEP embedding) vs blocked dgemm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::matmul::{matmul, matmul_gep};
use gep_apps::reference::matmul_reference;
use gep_bench::workloads::rnd_matrix;
use gep_blaslike::dgemm;
use gep_core::algebra::PlusTimesF64;
use gep_matrix::Matrix;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_mm");
    g.sample_size(10);
    for n in [128usize, 256] {
        let a = rnd_matrix(n, 11);
        let b2 = rnd_matrix(n, 12);
        g.bench_function(BenchmarkId::new("triple_loop", n), |bch| {
            bch.iter(|| black_box(matmul_reference(&a, &b2)))
        });
        g.bench_function(BenchmarkId::new("igep_dac_base64", n), |bch| {
            bch.iter(|| black_box(matmul::<PlusTimesF64>(&a, &b2, 64.min(n))))
        });
        g.bench_function(BenchmarkId::new("igep_embedding", n), |bch| {
            bch.iter(|| {
                black_box(matmul_gep::<PlusTimesF64>(
                    &a,
                    &b2,
                    Matrix::square(n, 0.0),
                    64.min(n),
                ))
            })
        });
        g.bench_function(BenchmarkId::new("blocked_dgemm", n), |bch| {
            bch.iter(|| {
                let mut c = Matrix::square(n, 0.0);
                dgemm(&mut c, &a, &b2);
                black_box(c[(0, 0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
