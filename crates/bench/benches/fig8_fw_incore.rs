//! Criterion bench for Figure 8: in-core Floyd–Warshall, GEP vs I-GEP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_core::{gep_iterative, igep_opt};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = FwSpec::<i64>::new();
    let mut g = c.benchmark_group("fig8_fw_incore");
    g.sample_size(10);
    for n in [128usize, 256, 512] {
        let input = random_dist_matrix(n, 8);
        g.bench_with_input(BenchmarkId::new("gep", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                gep_iterative(&spec, &mut m);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("igep_base64", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&spec, &mut m, 64);
                black_box(m[(0, 0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
