//! Criterion bench comparing `gep-kernels` backends per application:
//! scalar generic base case vs portable auto-vectorized vs the best SIMD
//! backend the host supports, at the default base size (64).
//!
//! Two views:
//!
//! * `kernel_compare/<app>` — full I-GEP runs of each application with
//!   the backend forced, throughput in updates (Criterion prints
//!   elements/s; multiply by the app's flops-per-update for GFLOP/s).
//! * `kernel_compare/disjoint_box` — the raw `C −= A·B` panel on one
//!   64×64 fully disjoint box, the shape where ~all FLOPs live (the
//!   acceptance target: best f64 kernel ≥ 2× the scalar loop here).
//!
//! The machine-readable GFLOP/s table (`BENCH_kernels.json`) comes from
//! `repro tune --json`, which sweeps the same grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gep_apps::floyd_warshall::FwSpec;
use gep_apps::matmul::matmul;
use gep_apps::{GaussianSpec, LuSpec, TransitiveClosureSpec};
use gep_bench::workloads::{dd_matrix, random_dist_matrix, rnd_matrix, XorShift};
use gep_core::algebra::PlusTimesF64;
use gep_core::igep_opt;
use gep_kernels::{detect_best, kernel_set, set_backend_override, Backend};
use gep_matrix::Matrix;
use std::hint::black_box;

const BASE: usize = 64;

/// Generic (scalar), portable, and — when it differs from portable — the
/// best SIMD backend on this host.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Generic, Backend::Portable];
    let best = detect_best();
    if !v.contains(&best) {
        v.push(best);
    }
    v
}

fn bench_apps(c: &mut Criterion) {
    let n = 256usize;
    let updates = (n * n * n) as u64;

    let ge_in = dd_matrix(n, 1061);
    let lu_in = dd_matrix(n, 1062);
    let fw_in = random_dist_matrix(n, 1063);
    let mut rng = XorShift(1064);
    let tc_in = Matrix::from_fn(n, n, |i, j| i == j || rng.next_u64() % 8 == 0);
    let mm_a = rnd_matrix(n, 1065);
    let mm_b = rnd_matrix(n, 1066);

    let mut g = c.benchmark_group("kernel_compare");
    g.sample_size(10);
    g.throughput(Throughput::Elements(updates));
    for backend in backends() {
        let id = backend.name();
        set_backend_override(Some(backend));
        g.bench_with_input(BenchmarkId::new("ge", id), &ge_in, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&GaussianSpec, &mut m, BASE);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("lu", id), &lu_in, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&LuSpec, &mut m, BASE);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("fw", id), &fw_in, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&FwSpec::<i64>::new(), &mut m, BASE);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("tc", id), &tc_in, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&TransitiveClosureSpec, &mut m, BASE);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("mm", id), &(&mm_a, &mm_b), |b, input| {
            b.iter(|| black_box(matmul::<PlusTimesF64>(input.0, input.1, BASE)[(0, 0)]))
        });
    }
    set_backend_override(None);
    g.finish();
}

/// The acceptance microbench: one 64×64×64 disjoint `C −= A·B` box.
fn bench_disjoint_box(c: &mut Criterion) {
    let s = BASE;
    let a = rnd_matrix(s, 2061);
    let b = rnd_matrix(s, 2062);

    let mut g = c.benchmark_group("kernel_compare/disjoint_box");
    // 2·s³ flops per panel application.
    g.throughput(Throughput::Elements(2 * (s * s * s) as u64));
    for backend in backends() {
        g.bench_with_input(
            BenchmarkId::new("mm_sub", backend.name()),
            &(),
            |bch, ()| {
                let mut cm = Matrix::square(s, 0.0);
                match kernel_set(backend) {
                    Some(set) => bch.iter(|| unsafe {
                        (set.f64_mm_sub)(
                            cm.as_mut_slice().as_mut_ptr(),
                            s,
                            a.as_slice().as_ptr(),
                            s,
                            b.as_slice().as_ptr(),
                            s,
                            s,
                            s,
                            s,
                        );
                        black_box(cm[(0, 0)])
                    }),
                    // Generic: the scalar loop the A/B/C/D base case runs.
                    None => bch.iter(|| {
                        for i in 0..s {
                            for k in 0..s {
                                let u = a[(i, k)];
                                for j in 0..s {
                                    cm[(i, j)] -= u * b[(k, j)];
                                }
                            }
                        }
                        black_box(cm[(0, 0)])
                    }),
                }
            },
        );
    }
    g.finish();
}

fn bench(c: &mut Criterion) {
    bench_apps(c);
    bench_disjoint_box(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
