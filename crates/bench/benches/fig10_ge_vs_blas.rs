//! Criterion bench for Figure 10: Gaussian elimination without pivoting —
//! GEP vs I-GEP vs the cache-aware blocked baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::GaussianSpec;
use gep_bench::workloads::dd_matrix;
use gep_blaslike::ge_blocked;
use gep_core::{gep_iterative, igep_opt};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_ge");
    g.sample_size(10);
    for n in [128usize, 256, 512] {
        let input = dd_matrix(n, 10);
        g.bench_with_input(BenchmarkId::new("gep", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                gep_iterative(&GaussianSpec, &mut m);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("igep_base64", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                igep_opt(&GaussianSpec, &mut m, 64);
                black_box(m[(0, 0)])
            })
        });
        g.bench_with_input(BenchmarkId::new("blocked_blas", n), &input, |b, input| {
            b.iter(|| {
                let mut m = input.clone();
                ge_blocked(&mut m, 64);
                black_box(m[(0, 0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
