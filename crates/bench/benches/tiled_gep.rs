//! Criterion bench for §2.3: cache-aware tiled GEP vs cache-oblivious
//! I-GEP vs the plain loop, on Floyd–Warshall.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_blaslike::gep_tiled;
use gep_core::{gep_iterative, igep_opt};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = FwSpec::<i64>::new();
    let mut g = c.benchmark_group("tiled_gep_sec23");
    g.sample_size(10);
    let n = 512;
    let input = random_dist_matrix(n, 23);
    g.bench_function(BenchmarkId::new("gep_loop", n), |b| {
        b.iter(|| {
            let mut m = input.clone();
            gep_iterative(&spec, &mut m);
            black_box(m[(0, 0)])
        })
    });
    for tile in [16usize, 64, 128] {
        g.bench_function(BenchmarkId::new(format!("tiled_gep_t{tile}"), n), |b| {
            b.iter(|| {
                let mut m = input.clone();
                gep_tiled(&spec, &mut m, tile);
                black_box(m[(0, 0)])
            })
        });
    }
    g.bench_function(BenchmarkId::new("igep_oblivious_b64", n), |b| {
        b.iter(|| {
            let mut m = input.clone();
            igep_opt(&spec, &mut m, 64);
            black_box(m[(0, 0)])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
