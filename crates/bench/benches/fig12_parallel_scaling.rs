//! Criterion bench for Figure 12: multithreaded I-GEP thread scaling
//! (bounded by this host's core count; see `repro fig12` for the
//! predicted curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gep_apps::floyd_warshall::FwSpec;
use gep_bench::workloads::random_dist_matrix;
use gep_matrix::Matrix;
use gep_parallel::{igep_parallel, matmul_parallel, with_threads};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_parallel");
    g.sample_size(10);
    let n = 256;
    let fw = random_dist_matrix(n, 13);
    let a = gep_bench::workloads::rnd_matrix(n, 14);
    let b2 = gep_bench::workloads::rnd_matrix(n, 15);
    for threads in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new("fw_igep", threads), |bch| {
            bch.iter(|| {
                with_threads(threads, || {
                    let mut m = fw.clone();
                    igep_parallel(&FwSpec::<i64>::new(), &mut m, 64);
                    black_box(m[(0, 0)])
                })
            })
        });
        g.bench_function(BenchmarkId::new("mm_dac", threads), |bch| {
            bch.iter(|| {
                with_threads(threads, || {
                    let mut c = Matrix::square(n, 0.0);
                    matmul_parallel::<gep_core::algebra::PlusTimesF64>(&mut c, &a, &b2, 64);
                    black_box(c[(0, 0)])
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
