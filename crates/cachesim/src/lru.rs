//! Fully associative LRU cache — the ideal-cache model instance.

use crate::{CacheModel, CacheStats};
use std::collections::{BTreeMap, HashMap};

/// Fully associative LRU cache of `capacity_blocks` blocks of `block_size`
/// bytes (i.e. `M = capacity_blocks · block_size`).
///
/// LRU stands in for the ideal model's optimal replacement, as in the
/// paper's own Cachegrind measurements; LRU is a stack algorithm, so miss
/// counts are monotone non-increasing in `M` (property-tested below).
#[derive(Debug)]
pub struct IdealCache {
    block_size: u64,
    capacity_blocks: usize,
    /// block id -> last-use stamp
    resident: HashMap<u64, u64>,
    /// last-use stamp -> block id (eviction order)
    by_age: BTreeMap<u64, u64>,
    clock: u64,
    stats: CacheStats,
}

impl IdealCache {
    /// Creates a cache with total size `m_bytes` and block size `b_bytes`.
    ///
    /// # Panics
    /// Panics unless both are positive and `b_bytes <= m_bytes`.
    pub fn new(m_bytes: u64, b_bytes: u64) -> Self {
        assert!(b_bytes > 0 && m_bytes >= b_bytes);
        Self {
            block_size: b_bytes,
            capacity_blocks: (m_bytes / b_bytes) as usize,
            resident: HashMap::new(),
            by_age: BTreeMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache size in bytes.
    pub fn m_bytes(&self) -> u64 {
        self.capacity_blocks as u64 * self.block_size
    }

    /// Block size in bytes.
    pub fn b_bytes(&self) -> u64 {
        self.block_size
    }

    /// Number of blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }
}

impl CacheModel for IdealCache {
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.block_size;
        self.clock += 1;
        let hit = if let Some(stamp) = self.resident.get_mut(&block) {
            self.by_age.remove(&*stamp);
            *stamp = self.clock;
            self.by_age.insert(self.clock, block);
            true
        } else {
            if self.resident.len() == self.capacity_blocks {
                let (&oldest, &victim) = self.by_age.iter().next().expect("non-empty");
                self.by_age.remove(&oldest);
                self.resident.remove(&victim);
                self.stats.evictions += 1;
            }
            self.resident.insert(block, self.clock);
            self.by_age.insert(self.clock, block);
            false
        };
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset(&mut self) {
        self.resident.clear();
        self.by_age.clear();
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = IdealCache::new(4 * 64, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same block
        assert!(!c.access(64)); // next block
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                evictions: 0,
            }
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = IdealCache::new(2 * 64, 64);
        c.access(0); // block 0
        c.access(64); // block 1
        c.access(0); // touch block 0 -> block 1 is LRU
        c.access(128); // block 2 evicts block 1
        assert!(c.access(0), "block 0 must still be resident");
        assert!(!c.access(64), "block 1 must have been evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = IdealCache::new(8 * 32, 32);
        for i in 0..100u64 {
            c.access(i * 32);
        }
        assert_eq!(c.resident_blocks(), 8);
        assert_eq!(c.stats().misses, 100);
        // 8 cold misses fill the frames; every later miss evicts.
        assert_eq!(c.stats().evictions, 92);
    }

    #[test]
    fn cyclic_scan_thrashes_when_too_big() {
        // Classic LRU pathology: scanning capacity+1 blocks cyclically
        // misses every time.
        let mut c = IdealCache::new(4 * 64, 64);
        for _ in 0..10 {
            for b in 0..5u64 {
                c.access(b * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn inclusion_property_misses_monotone_in_m() {
        // LRU is a stack algorithm: misses(M) is non-increasing in M for
        // any trace. Fuzz with random traces.
        let mut seed = 0xABCD_EF01u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let trace: Vec<u64> = (0..2000).map(|_| (rng() % 64) * 64).collect();
            let mut prev_misses = u64::MAX;
            for blocks in [2u64, 4, 8, 16, 32, 64] {
                let mut c = IdealCache::new(blocks * 64, 64);
                for &a in &trace {
                    c.access(a);
                }
                assert!(
                    c.stats().misses <= prev_misses,
                    "misses increased going to {blocks} blocks"
                );
                prev_misses = c.stats().misses;
            }
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = IdealCache::new(2 * 64, 64);
        c.access(0);
        c.access(64);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(0));
    }
}
