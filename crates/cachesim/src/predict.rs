//! Analytic miss-count predictions and host cache-geometry detection.
//!
//! The paper's central bound (Theorem 2.2 / Section 4): I-GEP incurs
//! `O(n³/(B√M))` cache misses on an ideal cache of `M` elements with
//! `B`-element blocks, against `Θ(n³/B)` for the iterative kernel once the
//! matrix outgrows the cache. `repro misses` puts three numbers side by
//! side per engine and size — *measured* misses (hardware counters via
//! `gep-hwc`), *simulated* misses ([`TrackedMatrix`](crate::TrackedMatrix)
//! over a host-shaped hierarchy) and these analytic curves scaled by a
//! fitted constant — so this module owns:
//!
//! * the bound formulas ([`igep_miss_bound`], [`iterative_miss_bound`]),
//!   in element units derived from byte geometry;
//! * sysfs cache-topology detection ([`detect_host`]), split into pure
//!   string parsers ([`parse_size`], [`HostCaches::from_entries`]) so the
//!   logic is unit-testable without a live `/sys`;
//! * the robust fit ([`fit_constant`]): the median of `measured / bound`
//!   over a sweep, pinning the bound's hidden constant to the data.

use crate::{Hierarchy, SetAssocCache};

/// I-GEP's cache-oblivious miss bound `n³ / (B·√M)`, in misses, for an
/// `n×n` problem on a cache of `m_bytes` with `b_bytes` lines holding
/// `elem_bytes`-sized elements. Returns 0 for degenerate geometry.
pub fn igep_miss_bound(n: usize, m_bytes: u64, b_bytes: u64, elem_bytes: u64) -> f64 {
    if elem_bytes == 0 || b_bytes < elem_bytes || m_bytes < b_bytes {
        return 0.0;
    }
    let b = (b_bytes / elem_bytes) as f64;
    let m = (m_bytes / elem_bytes) as f64;
    let n = n as f64;
    n * n * n / (b * m.sqrt())
}

/// The iterative kernel's miss bound `n³ / B` (it re-scans a row range per
/// update step, so once `n²` elements exceed `M` every pass misses). Same
/// unit conventions as [`igep_miss_bound`].
pub fn iterative_miss_bound(n: usize, b_bytes: u64, elem_bytes: u64) -> f64 {
    if elem_bytes == 0 || b_bytes < elem_bytes {
        return 0.0;
    }
    let b = (b_bytes / elem_bytes) as f64;
    let n = n as f64;
    n * n * n / b
}

/// The ratio of the two bounds — `√M` in elements — i.e. the factor the
/// paper predicts I-GEP saves over the iterative kernel.
pub fn predicted_speedup_factor(m_bytes: u64, elem_bytes: u64) -> f64 {
    if elem_bytes == 0 || m_bytes < elem_bytes {
        return 0.0;
    }
    ((m_bytes / elem_bytes) as f64).sqrt()
}

/// Median of `measured / bound` over a sweep — the fitted hidden constant
/// of the asymptotic bound. Median, not mean: a single multiplexing glitch
/// or cold-start outlier must not drag the whole fit. `None` when no pair
/// has a positive bound.
pub fn fit_constant(pairs: &[(f64, f64)]) -> Option<f64> {
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|(measured, bound)| *bound > 0.0 && measured.is_finite())
        .map(|(measured, bound)| measured / bound)
        .collect();
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let mid = ratios.len() / 2;
    Some(if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    })
}

/// One data or unified cache level of the host CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLevel {
    /// Cache level (1 = L1D, 2, 3, ...).
    pub level: u32,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways).
    pub ways: usize,
}

/// The host's data-cache hierarchy as reported by sysfs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostCaches {
    /// Data/unified levels sorted by level number (instruction caches are
    /// excluded — the bound is about data misses).
    pub levels: Vec<CacheLevel>,
}

impl HostCaches {
    /// Builds from raw sysfs strings, one tuple per `index*` directory:
    /// `(level, type, size, coherency_line_size, ways_of_associativity)`.
    /// Instruction caches and unparsable entries are skipped; levels are
    /// sorted and deduplicated (first entry per level wins — cpu0 lists
    /// each of its caches once).
    pub fn from_entries(entries: &[(&str, &str, &str, &str, &str)]) -> HostCaches {
        let mut levels: Vec<CacheLevel> = Vec::new();
        for (level, type_, size, line, ways) in entries {
            let type_ = type_.trim();
            if type_ != "Data" && type_ != "Unified" {
                continue;
            }
            let (Some(level), Some(size_bytes), Some(line_bytes)) = (
                level.trim().parse::<u32>().ok(),
                parse_size(size),
                parse_size(line),
            ) else {
                continue;
            };
            if size_bytes == 0 || line_bytes == 0 {
                continue;
            }
            if levels.iter().any(|l| l.level == level) {
                continue;
            }
            levels.push(CacheLevel {
                level,
                size_bytes,
                line_bytes,
                // Fully-associative caches report 0 ways in sysfs; model
                // those (and unreadable files) as 16-way — close enough
                // for a miss simulation.
                ways: match ways.trim().parse::<usize>() {
                    Ok(w) if w > 0 => w,
                    _ => 16,
                },
            });
        }
        levels.sort_by_key(|l| l.level);
        HostCaches { levels }
    }

    /// The L1 data cache, if detected.
    pub fn l1d(&self) -> Option<&CacheLevel> {
        self.levels.iter().find(|l| l.level == 1)
    }

    /// The last (largest-level) cache — the one hardware `llc_*` events
    /// count and the `M` the paper's bound should use for RAM-resident
    /// runs.
    pub fn last_level(&self) -> Option<&CacheLevel> {
        self.levels.last()
    }

    /// A two-level simulator shaped like this host (L1D + LLC), for
    /// running [`TrackedMatrix`](crate::TrackedMatrix) experiments that
    /// are comparable with the hardware counters. Capacities are rounded
    /// down to the nearest geometry the set-associative model can index
    /// (power-of-two set count) — real LLCs (e.g. 105 MB, 20-way) rarely
    /// land on one exactly.
    pub fn hierarchy(&self) -> Option<Hierarchy> {
        let l1 = self.l1d()?;
        let ll = self.last_level()?;
        Some(Hierarchy::new(simulable_cache(l1), simulable_cache(ll)))
    }
}

fn simulable_cache(level: &CacheLevel) -> SetAssocCache {
    let ways = level.ways.max(1);
    let blocks = (level.size_bytes / level.line_bytes).max(1) as usize;
    let sets = (blocks / ways).max(1);
    let sets = if sets.is_power_of_two() {
        sets
    } else {
        // Previous power of two.
        1 << (usize::BITS - 1 - sets.leading_zeros())
    };
    SetAssocCache::new(
        (sets * ways) as u64 * level.line_bytes,
        ways,
        level.line_bytes,
    )
}

/// Parses a sysfs cache size: `"48K"`, `"2048K"`, `"1M"`, `"64"` (plain
/// bytes), with trailing whitespace/newline tolerated.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().map(|v| v * mult)
}

/// Reads cpu0's cache topology from sysfs. `None` when `/sys` is absent
/// (non-Linux) or lists no parsable data caches.
pub fn detect_host() -> Option<HostCaches> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let read = |idx: &std::path::Path, file: &str| -> String {
        std::fs::read_to_string(idx.join(file)).unwrap_or_default()
    };
    let mut raw: Vec<(String, String, String, String, String)> = Vec::new();
    for entry in std::fs::read_dir(base).ok()? {
        let path = entry.ok()?.path();
        if !path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("index"))
        {
            continue;
        }
        raw.push((
            read(&path, "level"),
            read(&path, "type"),
            read(&path, "size"),
            read(&path, "coherency_line_size"),
            read(&path, "ways_of_associativity"),
        ));
    }
    let entries: Vec<(&str, &str, &str, &str, &str)> = raw
        .iter()
        .map(|(a, b, c, d, e)| (a.as_str(), b.as_str(), c.as_str(), d.as_str(), e.as_str()))
        .collect();
    let host = HostCaches::from_entries(&entries);
    (!host.levels.is_empty()).then_some(host)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ELEM: u64 = 8; // f64

    #[test]
    fn igep_bound_scales_as_n_cubed_over_b_root_m() {
        // B = 8 elements, M = 2^16 elements -> sqrt(M) = 256.
        let m_bytes = 65_536 * ELEM;
        let b = igep_miss_bound(1024, m_bytes, 64, ELEM);
        assert!((b - 1024f64.powi(3) / (8.0 * 256.0)).abs() < 1e-6);
        // Doubling n multiplies by 8; quadrupling M halves.
        assert!((igep_miss_bound(2048, m_bytes, 64, ELEM) / b - 8.0).abs() < 1e-9);
        assert!((igep_miss_bound(1024, 4 * m_bytes, 64, ELEM) / b - 0.5).abs() < 1e-9);
        // Degenerate geometry never divides by zero.
        assert_eq!(igep_miss_bound(128, 0, 64, ELEM), 0.0);
        assert_eq!(igep_miss_bound(128, 64, 64, 0), 0.0);
    }

    #[test]
    fn iterative_bound_and_speedup_factor() {
        let it = iterative_miss_bound(512, 64, ELEM);
        assert!((it - 512f64.powi(3) / 8.0).abs() < 1e-6);
        // iterative / igep == sqrt(M): the paper's predicted gap.
        let m_bytes = 65_536 * ELEM;
        let ig = igep_miss_bound(512, m_bytes, 64, ELEM);
        let factor = predicted_speedup_factor(m_bytes, ELEM);
        assert!((it / ig - factor).abs() < 1e-6);
        assert!((factor - 256.0).abs() < 1e-9);
    }

    #[test]
    fn fit_constant_is_the_median_ratio() {
        // Odd count: middle ratio. The outlier (100x) must not move it.
        let fit = fit_constant(&[(2.0, 1.0), (30.0, 10.0), (10_000.0, 100.0)]).unwrap();
        assert!((fit - 3.0).abs() < 1e-12);
        // Even count: mean of the middle two.
        let fit = fit_constant(&[(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (40.0, 10.0)]).unwrap();
        assert!((fit - 2.5).abs() < 1e-12);
        // Zero bounds and non-finite measurements are excluded.
        assert_eq!(fit_constant(&[(5.0, 0.0)]), None);
        assert_eq!(fit_constant(&[]), None);
        assert_eq!(fit_constant(&[(f64::NAN, 2.0)]), None);
    }

    #[test]
    fn sysfs_sizes_parse() {
        assert_eq!(parse_size("48K\n"), Some(48 * 1024));
        assert_eq!(parse_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size(" 107520K "), Some(107_520 * 1024));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("big"), None);
    }

    #[test]
    fn host_caches_build_from_mock_sysfs_entries() {
        // A typical topology: split L1, unified L2/L3, with the
        // instruction cache excluded and levels arriving out of order.
        let host = HostCaches::from_entries(&[
            ("3\n", "Unified\n", "107520K\n", "64\n", "20\n"),
            ("1\n", "Instruction\n", "32K\n", "64\n", "8\n"),
            ("1\n", "Data\n", "48K\n", "64\n", "12\n"),
            ("2\n", "Unified\n", "2048K\n", "64\n", "0\n"), // full assoc
            ("bogus", "Data", "1K", "64", "1"),             // unparsable level
        ]);
        assert_eq!(host.levels.len(), 3);
        assert_eq!(host.l1d().unwrap().size_bytes, 48 * 1024);
        assert_eq!(host.l1d().unwrap().ways, 12);
        assert_eq!(host.levels[1].ways, 16, "0 ways maps to a deep default");
        let ll = host.last_level().unwrap();
        assert_eq!(ll.level, 3);
        assert_eq!(ll.size_bytes, 107_520 * 1024);
        // 105 MB 20-way has a non-power-of-two set count; the simulator
        // geometry rounds capacity down rather than failing.
        let sim = host.hierarchy().expect("awkward geometry still simulates");
        assert!(sim.l2.sets().is_power_of_two());
        assert!(sim.l2.sets() as u64 * 20 * 64 <= ll.size_bytes);
        assert!(HostCaches::from_entries(&[]).hierarchy().is_none());
    }

    #[test]
    fn live_detection_is_sane_when_present() {
        // On Linux CI this exercises the real /sys walk; elsewhere the
        // None branch is the contract.
        if let Some(host) = detect_host() {
            let l1 = host.l1d().expect("a data L1 exists when /sys does");
            assert!(l1.line_bytes.is_power_of_two());
            assert!(l1.size_bytes >= 4 * 1024);
            let ll = host.last_level().unwrap();
            assert!(ll.size_bytes >= l1.size_bytes);
            assert!(host.hierarchy().is_some());
        }
    }
}
