//! TLB simulation.
//!
//! Section 4.2 adopts the bit-interleaved (Morton-tiled) layout "for
//! reduced TLB misses": with a row-major layout, walking a `b × b` tile of
//! a large matrix touches `b` distinct pages, while the tiled layout packs
//! each tile into `b²/P` pages. A TLB is just a small fully associative
//! LRU cache over page numbers, so the model reuses the ideal-cache
//! machinery with page-sized blocks.

use crate::{CacheModel, CacheStats, IdealCache};

/// A data TLB: `entries` page-translation slots over `page_bytes` pages,
/// fully associative LRU (the common model for small dTLBs; the paper-era
/// Opteron had a 40-entry fully associative L1 dTLB over 4 KB pages).
#[derive(Debug)]
pub struct Tlb {
    inner: IdealCache,
}

impl Tlb {
    /// Creates a TLB with the given entry count and page size.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        Self {
            inner: IdealCache::new(entries as u64 * page_bytes, page_bytes),
        }
    }

    /// The paper-era default: 40 entries × 4 KiB pages.
    pub fn opteron_dtlb() -> Self {
        Self::new(40, 4096)
    }
}

impl CacheModel for Tlb {
    fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }
    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
    fn reset(&mut self) {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0));
        assert!(t.access(4095)); // same page
        assert!(!t.access(4096)); // next page
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn capacity_behaves_like_lru() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 recent
        t.access(2 * 4096); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096));
    }

    /// The §4.2 motivation, distilled: walking column-strided tiles of a
    /// large row-major matrix thrashes a small TLB; the Morton-tiled
    /// layout does not.
    #[test]
    fn tiled_layout_saves_tlb_misses_on_tile_walks() {
        use gep_matrix::{Layout, MortonTiled, RowMajor};
        let n = 512usize; // 512x512 f64 = 2 MB = 512 pages
        let tile = 64usize;
        let walk = |layout: &dyn Layout| {
            let mut t = Tlb::new(16, 4096);
            // Touch every element tile by tile (one pass).
            for bi in 0..n / tile {
                for bj in 0..n / tile {
                    for i in 0..tile {
                        for j in 0..tile {
                            let idx = layout.index(n, bi * tile + i, bj * tile + j) as u64;
                            t.access(idx * 8);
                        }
                    }
                }
            }
            t.stats().misses
        };
        let row_major = walk(&RowMajor);
        let tiled = walk(&MortonTiled { tile });
        assert!(
            tiled * 4 < row_major,
            "tiled {tiled} should be far below row-major {row_major}"
        );
    }
}
