//! Two-level cache hierarchy (L1 + L2), as measured by the paper's
//! Cachegrind runs.

use crate::{CacheModel, CacheStats, SetAssocCache};

/// An inclusive-ish two-level hierarchy: every access touches L1; L1
/// misses are forwarded to L2. (Cachegrind's model; inclusion is implied
/// by both being LRU over the same stream.)
#[derive(Debug)]
pub struct Hierarchy {
    /// First-level cache.
    pub l1: SetAssocCache,
    /// Second-level cache.
    pub l2: SetAssocCache,
}

impl Hierarchy {
    /// Builds a hierarchy from two caches.
    pub fn new(l1: SetAssocCache, l2: SetAssocCache) -> Self {
        Self { l1, l2 }
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics (accesses = L1 misses).
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Publishes both levels to the `gep_obs` recorder (if installed) as
    /// `cache.<label>.l1.*` and `cache.<label>.l2.*` counter families.
    pub fn publish(&self, label: &str) {
        self.l1_stats().publish(&format!("{label}.l1"));
        self.l2_stats().publish(&format!("{label}.l2"));
    }
}

impl CacheModel for Hierarchy {
    fn access(&mut self, addr: u64) -> bool {
        if self.l1.access(addr) {
            true
        } else {
            self.l2.access(addr);
            false
        }
    }

    fn stats(&self) -> CacheStats {
        self.l1.stats()
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(
            SetAssocCache::new(4 * 64, 2, 64),
            SetAssocCache::new(16 * 64, 4, 64),
        )
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = small();
        for _ in 0..10 {
            h.access(0);
        }
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l1_stats().hits, 9);
        assert_eq!(h.l2_stats().accesses(), 1);
    }

    #[test]
    fn working_set_between_l1_and_l2_hits_l2() {
        let mut h = small();
        // 8 blocks: fits L2 (16 blocks), not L1 (4 blocks).
        for _round in 0..10 {
            for b in 0..8u64 {
                h.access(b * 64);
            }
        }
        assert!(h.l1_stats().misses > 8, "L1 thrashes");
        assert_eq!(h.l2_stats().misses, 8, "L2 misses only compulsory");
    }

    #[test]
    fn reset_clears_both_levels() {
        let mut h = small();
        h.access(0);
        h.reset();
        assert_eq!(h.l1_stats(), CacheStats::default());
        assert_eq!(h.l2_stats(), CacheStats::default());
    }
}
