//! Set-associative LRU cache, for modelling the Table 2 machines' real
//! L1/L2 geometries.

use crate::{CacheModel, CacheStats};

/// Set-associative cache with LRU replacement within each set.
#[derive(Debug)]
pub struct SetAssocCache {
    block_size: u64,
    sets: usize,
    ways: usize,
    /// `sets × ways` entries: `(tag, last-use stamp)`; `u64::MAX` tag =
    /// empty.
    lines: Vec<(u64, u64)>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` total, `ways`-way associative with
    /// blocks of `block_bytes`.
    ///
    /// # Panics
    /// Panics unless the geometry divides evenly and the set count is a
    /// power of two.
    pub fn new(size_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        assert!(block_bytes > 0 && ways > 0);
        let blocks = size_bytes / block_bytes;
        assert_eq!(blocks as usize % ways, 0, "ways must divide block count");
        let sets = blocks as usize / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            block_size: block_bytes,
            sets,
            ways,
            lines: vec![(u64::MAX, 0); sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl CacheModel for SetAssocCache {
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.block_size;
        let set = (block as usize) & (self.sets - 1);
        let tag = block >> self.sets.trailing_zeros();
        self.clock += 1;
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];
        if let Some(line) = set_lines.iter_mut().find(|l| l.0 == tag) {
            line.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        // Miss: fill an empty way or evict the set-local LRU.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.0 == u64::MAX { 0 } else { l.1 })
            .expect("ways > 0");
        if victim.0 != u64::MAX {
            self.stats.evictions += 1;
        }
        *victim = (tag, self.clock);
        self.stats.misses += 1;
        false
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn reset(&mut self) {
        self.lines.fill((u64::MAX, 0));
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::IdealCache;

    #[test]
    fn geometry() {
        // 8 KB, 4-way, 64 B blocks (the Xeon L1): 128 blocks, 32 sets.
        let c = SetAssocCache::new(8 * 1024, 4, 64);
        assert_eq!(c.sets(), 32);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn single_set_equals_fully_associative() {
        // ways == total blocks -> one set -> behaves exactly like LRU.
        let mut sa = SetAssocCache::new(8 * 64, 8, 64);
        let mut fa = IdealCache::new(8 * 64, 64);
        let mut seed = 77u64;
        for _ in 0..5000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let addr = (seed % 24) * 64 + (seed % 13);
            assert_eq!(sa.access(addr), fa.access(addr));
        }
        assert_eq!(sa.stats(), fa.stats());
    }

    #[test]
    fn conflict_misses_within_one_set() {
        // Direct-mapped (1-way): two blocks mapping to the same set evict
        // each other even though the cache is mostly empty.
        let mut c = SetAssocCache::new(4 * 64, 1, 64); // 4 sets, 1 way
        let a = 0u64; // set 0
        let b = 4 * 64; // also set 0
        for _ in 0..10 {
            c.access(a);
            c.access(b);
        }
        assert_eq!(c.stats().hits, 0, "direct-mapped ping-pong never hits");
        // First fill of set 0 is a cold miss; the other 19 misses evict.
        assert_eq!(c.stats().evictions, 19);
        // The fully associative cache of the same size has no problem.
        let mut fa = IdealCache::new(4 * 64, 64);
        for _ in 0..10 {
            fa.access(a);
            fa.access(b);
        }
        assert_eq!(fa.stats().misses, 2);
    }

    #[test]
    fn lru_within_set() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64); // 1 set, 2 ways
        c.access(0); // block 0
        c.access(64); // block 1
        c.access(0); // block 0 most recent
        c.access(128); // evicts block 1
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = SetAssocCache::new(8 * 1024, 4, 64);
        c.access(1234);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(1234));
    }
}
