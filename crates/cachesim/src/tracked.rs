//! `CellStore` instrumentation: run any GEP engine under a simulated
//! cache.
//!
//! A [`TrackedMatrix`] owns its element data but routes every
//! `read`/`write` through a [`SharedCache`] (so the input matrix and
//! C-GEP's four snapshot matrices can share one cache, exactly like a real
//! machine), mapping `(i, j)` to a byte address through any
//! [`Layout`](gep_matrix::Layout) — row-major by default, or the paper's
//! §4.2 Morton-tiled layout.

use crate::CacheModel;
use gep_core::CellStore;
use gep_matrix::{Layout, Matrix, RowMajor};
use std::cell::RefCell;
use std::rc::Rc;

/// A cache model shared by several tracked matrices (single-threaded).
pub type SharedCache<C> = Rc<RefCell<C>>;

/// Allocates non-overlapping, block-aligned base addresses for matrices in
/// a simulated address space.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// A fresh address space starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `bytes`, aligned up to `align`, returning the base address.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        let base = self.next.div_ceil(align) * align;
        self.next = base + bytes;
        base
    }
}

/// An `n x n` matrix whose every element access touches a shared simulated
/// cache.
pub struct TrackedMatrix<T, C: CacheModel, L: Layout = RowMajor> {
    data: Matrix<T>,
    cache: SharedCache<C>,
    base_addr: u64,
    layout: L,
}

impl<T: Copy, C: CacheModel, L: Layout> TrackedMatrix<T, C, L> {
    /// Wraps `data`, placing it at a fresh block-aligned base address in
    /// `space` and mapping indices with `layout`.
    pub fn with_layout(
        data: Matrix<T>,
        cache: SharedCache<C>,
        space: &mut AddressSpace,
        layout: L,
    ) -> Self {
        let n = data.n() as u64;
        let bytes = n * n * std::mem::size_of::<T>() as u64;
        let base_addr = space.alloc(bytes, 64);
        Self {
            data,
            cache,
            base_addr,
            layout,
        }
    }

    /// The wrapped matrix (by reference, without touching the cache).
    pub fn inner(&self) -> &Matrix<T> {
        &self.data
    }

    /// Unwraps into the plain matrix.
    pub fn into_inner(self) -> Matrix<T> {
        self.data
    }

    #[inline]
    fn touch(&self, i: usize, j: usize) {
        let idx = self.layout.index(self.data.n(), i, j) as u64;
        let addr = self.base_addr + idx * std::mem::size_of::<T>() as u64;
        self.cache.borrow_mut().access(addr);
    }
}

impl<T: Copy, C: CacheModel> TrackedMatrix<T, C, RowMajor> {
    /// Row-major tracked matrix.
    pub fn new(data: Matrix<T>, cache: SharedCache<C>, space: &mut AddressSpace) -> Self {
        Self::with_layout(data, cache, space, RowMajor)
    }
}

impl<T: Copy, C: CacheModel, L: Layout> CellStore<T> for TrackedMatrix<T, C, L> {
    fn n(&self) -> usize {
        self.data.n()
    }
    #[inline]
    fn read(&mut self, i: usize, j: usize) -> T {
        self.touch(i, j);
        self.data.get(i, j)
    }
    #[inline]
    fn write(&mut self, i: usize, j: usize, v: T) {
        self.touch(i, j);
        self.data.set(i, j, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealCache;
    use gep_apps::floyd_warshall::{FwSpec, Weight};
    use gep_core::{gep_iterative, igep};

    fn fw_input(n: usize, seed: u64) -> Matrix<i64> {
        let mut s = seed;
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0
            } else {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s % 5 == 0 {
                    <i64 as Weight>::INFINITY
                } else {
                    (s % 30) as i64 + 1
                }
            }
        })
    }

    fn run_g_misses(n: usize, m_bytes: u64, b_bytes: u64) -> (u64, Matrix<i64>) {
        let cache = Rc::new(RefCell::new(IdealCache::new(m_bytes, b_bytes)));
        let mut space = AddressSpace::new();
        let mut t = TrackedMatrix::new(fw_input(n, 1), cache.clone(), &mut space);
        gep_iterative(&FwSpec::<i64>::new(), &mut t);
        let misses = cache.borrow().stats().misses;
        (misses, t.into_inner())
    }

    fn run_igep_misses(n: usize, m_bytes: u64, b_bytes: u64) -> (u64, Matrix<i64>) {
        let cache = Rc::new(RefCell::new(IdealCache::new(m_bytes, b_bytes)));
        let mut space = AddressSpace::new();
        let mut t = TrackedMatrix::new(fw_input(n, 1), cache.clone(), &mut space);
        igep(&FwSpec::<i64>::new(), &mut t, 1);
        let misses = cache.borrow().stats().misses;
        (misses, t.into_inner())
    }

    #[test]
    fn tracking_does_not_change_results() {
        let n = 32;
        let (_, tracked_result) = run_igep_misses(n, 4096, 64);
        let mut plain = fw_input(n, 1);
        igep(&FwSpec::<i64>::new(), &mut plain, 1);
        assert_eq!(tracked_result, plain);
    }

    #[test]
    fn igep_misses_far_fewer_than_g() {
        // n = 64 (32 KB matrix), cache 4 KB, B = 64 B: the out-of-cache
        // regime where the paper's separation shows.
        let n = 64;
        let (g, _) = run_g_misses(n, 4096, 64);
        let (f, _) = run_igep_misses(n, 4096, 64);
        assert!(
            f * 3 < g,
            "I-GEP should miss at least 3x less: igep={f} g={g}"
        );
    }

    #[test]
    fn igep_misses_scale_down_with_m() {
        // Ideal-cache bound n³/(B√M): quadrupling M should roughly halve
        // misses (allow slack for constants and boundary effects).
        let n = 64;
        let (m1, _) = run_igep_misses(n, 2048, 64);
        let (m4, _) = run_igep_misses(n, 8192, 64);
        assert!(
            (m4 as f64) < 0.75 * m1 as f64,
            "4x cache should cut misses well below 75%: {m1} -> {m4}"
        );
    }

    #[test]
    fn g_misses_insensitive_to_m() {
        // GEP's Θ(n³/B) bound doesn't improve with cache size (once the
        // matrix doesn't fit).
        let n = 64;
        let (small, _) = run_g_misses(n, 2048, 64);
        let (large, _) = run_g_misses(n, 8192, 64);
        let ratio = large as f64 / small as f64;
        assert!(ratio > 0.5, "G barely benefits from 4x cache: {ratio}");
    }

    #[test]
    fn address_space_is_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100, 64);
        let b = s.alloc(100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn shared_cache_across_matrices() {
        let cache = Rc::new(RefCell::new(IdealCache::new(2 * 64, 64)));
        let mut space = AddressSpace::new();
        let mut m1 = TrackedMatrix::new(Matrix::square(8, 0u8), cache.clone(), &mut space);
        let mut m2 = TrackedMatrix::new(Matrix::square(8, 0u8), cache.clone(), &mut space);
        // Accesses to different matrices evict each other in a tiny cache.
        m1.write(0, 0, 1);
        m2.write(0, 0, 2);
        let _ = m1.read(0, 0);
        let _ = m2.read(0, 0);
        assert_eq!(m1.inner()[(0, 0)], 1);
        assert_eq!(m2.inner()[(0, 0)], 2);
        assert_eq!(cache.borrow().stats().accesses(), 4);
    }
}
