//! The paper's Table 2 machines as simulator configurations.
//!
//! | Model | Processors | Speed | Peak GFLOPS | L1 | L2 | RAM |
//! |---|---|---|---|---|---|---|
//! | Intel P4 Xeon | 2 | 3.06 GHz | 6.12 | 8 KB 4-way B=64 | 512 KB 8-way B=64 | 4 GB |
//! | AMD Opteron 250 | 2 | 2.4 GHz | 4.8 | 64 KB 2-way B=64 | 1 MB 8-way B=64 | 4 GB |
//! | AMD Opteron 850 | 8 (4 dual-core) | 2.2 GHz | 4.4 | 64 KB 2-way B=64 | 1 MB 8-way B=64 | 32 GB |

use crate::{Hierarchy, SetAssocCache};

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Machine {
    /// Model name.
    pub name: &'static str,
    /// Processor count (cores).
    pub processors: usize,
    /// Clock speed in GHz.
    pub ghz: f64,
    /// Peak double-precision GFLOPS per processor (2 × clock).
    pub peak_gflops: f64,
    /// L1: (size bytes, ways, block bytes).
    pub l1: (u64, usize, u64),
    /// L2: (size bytes, ways, block bytes).
    pub l2: (u64, usize, u64),
    /// RAM in bytes.
    pub ram: u64,
}

impl Machine {
    /// Builds the machine's L1+L2 hierarchy simulator.
    pub fn hierarchy(&self) -> Hierarchy {
        Hierarchy::new(
            SetAssocCache::new(self.l1.0, self.l1.1, self.l1.2),
            SetAssocCache::new(self.l2.0, self.l2.1, self.l2.2),
        )
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;
const GB: u64 = 1024 * 1024 * 1024;

/// The three machines of Table 2.
pub fn table2_machines() -> [Machine; 3] {
    [
        Machine {
            name: "Intel P4 Xeon",
            processors: 2,
            ghz: 3.06,
            peak_gflops: 6.12,
            l1: (8 * KB, 4, 64),
            l2: (512 * KB, 8, 64),
            ram: 4 * GB,
        },
        Machine {
            name: "AMD Opteron 250",
            processors: 2,
            ghz: 2.4,
            peak_gflops: 4.8,
            l1: (64 * KB, 2, 64),
            l2: (MB, 8, 64),
            ram: 4 * GB,
        },
        Machine {
            name: "AMD Opteron 850",
            processors: 8,
            ghz: 2.2,
            peak_gflops: 4.4,
            l1: (64 * KB, 2, 64),
            l2: (MB, 8, 64),
            ram: 32 * GB,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_twice_clock() {
        for m in table2_machines() {
            assert!((m.peak_gflops - 2.0 * m.ghz).abs() < 1e-9, "{}", m.name);
        }
    }

    #[test]
    fn hierarchies_build_with_table2_geometry() {
        let xeon = table2_machines()[0].hierarchy();
        assert_eq!(xeon.l1.sets(), 8 * 1024 / 64 / 4);
        assert_eq!(xeon.l1.ways(), 4);
        assert_eq!(xeon.l2.ways(), 8);
        let opteron = table2_machines()[1].hierarchy();
        assert_eq!(opteron.l1.sets(), 64 * 1024 / 64 / 2);
    }

    #[test]
    fn opterons_share_cache_geometry() {
        let ms = table2_machines();
        assert_eq!(ms[1].l1, ms[2].l1);
        assert_eq!(ms[1].l2, ms[2].l2);
        assert!(ms[2].processors > ms[1].processors);
    }
}
