//! # gep-cachesim — cache simulators (the paper's Cachegrind substitute)
//!
//! The paper measures cache misses with the Cachegrind profiler and
//! analyses algorithms in the ideal-cache model (a fully associative cache
//! of size `M` with block size `B`). This crate provides both:
//!
//! * [`IdealCache`] — fully associative LRU cache parameterised by
//!   `(M, B)`; the ideal-cache model up to the standard LRU-for-OPT
//!   substitution (competitive within a factor of two at double the
//!   capacity, and exactly what Cachegrind-style tools simulate);
//! * [`SetAssocCache`] — set-associative LRU, configurable
//!   `(size, ways, B)`;
//! * [`Hierarchy`] — a two-level L1/L2 hierarchy, with [`machines`]
//!   presets for the paper's Table 2 machines (Intel P4 Xeon,
//!   AMD Opteron 250/850);
//! * [`TrackedMatrix`] — a [`gep_core::CellStore`] wrapper that routes
//!   every element access of any GEP engine through a shared simulated
//!   cache, using any `gep-matrix` [`Layout`](gep_matrix::Layout) for the
//!   address map;
//! * [`predict`] — the analytic side: the `Θ(n³/(B√M))` / `Θ(n³/B)` miss
//!   bounds, host cache-geometry detection from sysfs, and the
//!   median-ratio constant fit used by `repro misses` to put measured,
//!   simulated and predicted misses in one table.
//!
//! Running the *unchanged* engines of `gep-core` over tracked stores
//! reproduces the paper's miss-count experiments (Figures 9 and 11).

pub mod hierarchy;
pub mod lru;
pub mod machines;
pub mod predict;
pub mod setassoc;
pub mod tlb;
pub mod tracked;

pub use hierarchy::Hierarchy;
pub use lru::IdealCache;
pub use machines::{table2_machines, Machine};
pub use predict::{
    detect_host, fit_constant, igep_miss_bound, iterative_miss_bound, predicted_speedup_factor,
    CacheLevel, HostCaches,
};
pub use setassoc::SetAssocCache;
pub use tlb::Tlb;
pub use tracked::{AddressSpace, SharedCache, TrackedMatrix};

/// Hit/miss/eviction counters common to all cache models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (block transfers from the next level).
    pub misses: u64,
    /// Misses that displaced a resident block (`<= misses`; the
    /// difference is cold misses into free frames).
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for an untouched cache).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Publishes the counters to the `gep_obs` recorder (if one is
    /// installed) under `cache.<label>.{hits,misses,evictions}`.
    pub fn publish(&self, label: &str) {
        if !gep_obs::enabled() {
            return;
        }
        gep_obs::counter_add(&format!("cache.{label}.hits"), self.hits);
        gep_obs::counter_add(&format!("cache.{label}.misses"), self.misses);
        gep_obs::counter_add(&format!("cache.{label}.evictions"), self.evictions);
    }
}

/// A byte-addressed cache model.
pub trait CacheModel {
    /// Touches the block containing `addr`; returns `true` on hit.
    fn access(&mut self, addr: u64) -> bool;

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;

    /// Resets contents and counters.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
