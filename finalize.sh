#!/bin/bash
set -u
cd /root/repo
echo "start: $(date)" > /root/repo/finalize.log
cargo run -p gep-bench --release --bin repro -- all 2>&1 | grep -v WARNING > /root/repo/repro_output.txt
echo "REPRO_DONE rc=$? $(date)" >> /root/repo/finalize.log
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt >/dev/null
echo "TEST_DONE rc=$? $(date)" >> /root/repo/finalize.log
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt >/dev/null
echo "BENCH_DONE rc=$? $(date)" >> /root/repo/finalize.log
echo "ALL_DONE $(date)" >> /root/repo/finalize.log
